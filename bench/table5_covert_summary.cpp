// Reproduces Table V: design features and end-to-end evaluation of the
// three covert channels on CX-4/5/6 — bandwidth, error rate and effective
// bandwidth (raw x (1 - H2(err)); the paper's own numbers satisfy this
// identity, see tests/sim_test.cpp).
//
// The nine (channel x device) cells are independent simulations, dispatched
// through the harness thread pool.  All payload bits are drawn up front from
// the single bench RNG in the serial order, so the table is byte-identical
// to the historical serial run for any --jobs value.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/priority_channel.hpp"
#include "covert/uli_channel.hpp"

using namespace ragnar;

namespace {

struct Row {
  const char* label;
  double kbps[3];
  double err[3];
  double eff[3];
};

}  // namespace

RAGNAR_SCENARIO(table5_covert_summary, "Table V",
                "3 covert channels x CX-4/5/6: bandwidth/error/effective matrix",
                "256-bit payloads",
                "768-bit payloads") {
  ctx.header("covert-channel evaluation matrix (Table V)",
                "3 channels x CX-4/5/6: bandwidth / error / effective");

  sim::Xoshiro256 rng(ctx.seed);
  const std::size_t nbits = ctx.full ? 768 : 256;
  const auto payload = covert::random_bits(nbits, rng);
  // Per-device priority-channel payloads, drawn in serial device order.
  std::vector<std::vector<int>> prio_payloads;
  for (int d = 0; d < 3; ++d) prio_payloads.push_back(covert::random_bits(24, rng));

  Row inter{"Inter MR (Grain III)", {}, {}, {}};
  Row intra{"Intra MR (Grain IV)", {}, {}, {}};
  Row prio{"Inter Traffic-Class (I+II)", {}, {}, {}};

  harness::SweepRunner sweep;
  for (int d = 0; d < 3; ++d) {
    const auto model = scenario::kAllDevices[d];
    const std::string dev = rnic::device_name(model);
    sweep.add("inter_mr:" + dev, [&, d, model](harness::TrialContext&) {
      auto cfg = covert::UliChannelConfig::best_for(
          model, covert::UliChannelKind::kInterMr, ctx.seed);
      covert::UliCovertChannel ch(cfg);
      const auto run = ch.transmit(payload);
      inter.kbps[d] = run.raw_bps() / 1e3;
      inter.err[d] = run.error_rate();
      inter.eff[d] = run.effective_bps() / 1e3;
      harness::Record rec;
      rec.set("kbps", inter.kbps[d], 3);
      rec.set("err", inter.err[d], 5);
      return rec;
    });
    sweep.add("intra_mr:" + dev, [&, d, model](harness::TrialContext&) {
      auto cfg = covert::UliChannelConfig::best_for(
          model, covert::UliChannelKind::kIntraMr, ctx.seed);
      covert::UliCovertChannel ch(cfg);
      const auto run = ch.transmit(payload);
      intra.kbps[d] = run.raw_bps() / 1e3;
      intra.err[d] = run.error_rate();
      intra.eff[d] = run.effective_bps() / 1e3;
      harness::Record rec;
      rec.set("kbps", intra.kbps[d], 3);
      rec.set("err", intra.err[d], 5);
      return rec;
    });
    sweep.add("priority:" + dev, [&, d, model](harness::TrialContext&) {
      covert::PriorityChannelConfig cfg;
      cfg.model = model;
      cfg.seed = ctx.seed;
      covert::PriorityCovertChannel ch(cfg);
      const auto run = ch.transmit(prio_payloads[static_cast<std::size_t>(d)]);
      prio.kbps[d] = ch.bits_per_interval(run);  // bits per counter interval
      prio.err[d] = run.error_rate();
      prio.eff[d] = prio.kbps[d] * (1 - sim::binary_entropy(prio.err[d]));
      harness::Record rec;
      rec.set("bits_per_interval", prio.kbps[d], 3);
      rec.set("err", prio.err[d], 5);
      return rec;
    });
  }
  ctx.run_sweep(sweep, "table5_covert_summary");

  auto print_row = [](const char* metric, const Row& r, const char* unit) {
    std::printf("%-28s %-12s | %8.2f | %8.2f | %8.2f | %s\n", r.label, metric,
                r.kbps[0], r.kbps[1], r.kbps[2], unit);
    (void)unit;
  };
  std::printf("\n%-28s %-12s | %8s | %8s | %8s |\n", "channel", "metric",
              "CX-4", "CX-5", "CX-6");
  std::printf("--------------------------------------------------------------"
              "--------\n");
  print_row("bandwidth", prio, "bits/interval (paper: 1.0/1.1/1.1 bps @1s)");
  std::printf("%-28s %-12s | %7.2f%% | %7.2f%% | %7.2f%% | paper: 0/0/0\n",
              "", "error", 100 * prio.err[0], 100 * prio.err[1],
              100 * prio.err[2]);
  std::printf("--------------------------------------------------------------"
              "--------\n");
  print_row("bandwidth", inter, "Kbps (paper: 31.8/63.6/84.3)");
  std::printf("%-28s %-12s | %7.2f%% | %7.2f%% | %7.2f%% | paper: "
              "5.92/3.98/7.59\n",
              "", "error", 100 * inter.err[0], 100 * inter.err[1],
              100 * inter.err[2]);
  std::printf("%-28s %-12s | %8.2f | %8.2f | %8.2f | Kbps (paper: "
              "21.5/48.3/51.6)\n",
              "", "effective", inter.eff[0], inter.eff[1], inter.eff[2]);
  std::printf("--------------------------------------------------------------"
              "--------\n");
  print_row("bandwidth", intra, "Kbps (paper: 32.2/31.5/81.3)");
  std::printf("%-28s %-12s | %7.2f%% | %7.2f%% | %7.2f%% | paper: "
              "6.95/4.84/4.08\n",
              "", "error", 100 * intra.err[0], 100 * intra.err[1],
              100 * intra.err[2]);
  std::printf("%-28s %-12s | %8.2f | %8.2f | %8.2f | Kbps (paper: "
              "20.5/22.7/61.3)\n",
              "", "effective", intra.eff[0], intra.eff[1], intra.eff[2]);
  return 0;
}
