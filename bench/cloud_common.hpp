#pragma once

// Shared plumbing for the cloud_* scenario family: a fully wired
// unidirectional RC attachment between two hosts of a fabric::Topology (the
// cloud analogue of Testbed::connect, which presumes the two-host facade),
// plus the closed-loop posting helper every tenant actor uses.
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "verbs/context.hpp"

namespace ragnar::cloud {

struct Conn {
  std::unique_ptr<verbs::ProtectionDomain> src_pd;
  std::unique_ptr<verbs::ProtectionDomain> dst_pd;
  std::unique_ptr<verbs::CompletionQueue> src_cq;
  std::unique_ptr<verbs::CompletionQueue> dst_cq;
  std::vector<std::unique_ptr<verbs::QueuePair>> src_qps;
  std::vector<std::unique_ptr<verbs::QueuePair>> dst_qps;
  std::unique_ptr<verbs::MemoryRegion> src_mr;  // local staging buffer
  std::unique_ptr<verbs::MemoryRegion> dst_mr;  // remote target region

  verbs::QueuePair& qp(std::size_t i = 0) { return *src_qps.at(i); }
  verbs::CompletionQueue& cq() { return *src_cq; }
};

inline Conn connect(verbs::Context& src, verbs::Context& dst,
                    std::size_t qp_count, const verbs::QpConfig& cfg,
                    std::uint64_t buf_len = 1u << 20) {
  Conn c;
  c.src_pd = src.alloc_pd();
  c.dst_pd = dst.alloc_pd();
  c.src_cq = src.create_cq();
  c.dst_cq = dst.create_cq();
  c.src_mr = c.src_pd->register_mr(buf_len);
  c.dst_mr = c.dst_pd->register_mr(buf_len);
  for (std::size_t q = 0; q < qp_count; ++q) {
    c.src_qps.push_back(c.src_pd->create_qp(*c.src_cq, cfg));
    c.dst_qps.push_back(c.dst_pd->create_qp(*c.dst_cq, cfg));
    const verbs::ConnectResult cr =
        c.src_qps.back()->connect(*c.dst_qps.back());
    assert(cr == verbs::ConnectResult::kOk);
    (void)cr;
  }
  return c;
}

// Closed-loop posting helper: one WR of `length` bytes.
inline bool post_one(Conn& conn, verbs::WrOpcode opcode,
                     std::uint32_t length) {
  verbs::SendWr wr;
  wr.opcode = opcode;
  wr.local_addr = conn.src_mr->addr();
  wr.length = length;
  wr.remote_addr = conn.dst_mr->addr();
  wr.rkey = conn.dst_mr->rkey();
  return conn.qp().post_send(wr) == verbs::PostResult::kOk;
}

}  // namespace ragnar::cloud
