// Extension experiment motivated by section VI's intro: "An attacker can
// infer individual usage habits and expose system access hotspots in
// key-value stores."  Here the victim does not hammer one fixed address —
// it runs a YCSB-style Zipfian GET mix over the shared records, and the
// attacker's Grain-IV trace still recovers the *hottest record* (and, with
// lower skew, degrades gracefully).
#include <cstdio>

#include "apps/workload.hpp"
#include "scenario/scenario.hpp"
#include "side/snoop.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(claim_hotspot_detection, "sec VI",
                "Zipfian KV-store victim; attacker recovers the hottest record",
                "24 sweeps per trace",
                "48 sweeps per trace") {
  ctx.header("KV-store hotspot detection (section VI motivation)",
                "Zipfian victim; attacker recovers the hot record");

  // Show the skew profile first.
  {
    apps::ZipfianGenerator gen(17, 0.99, sim::Xoshiro256(ctx.seed));
    const auto hist = apps::sample_histogram(gen, 100000);
    std::printf("\nZipfian(theta=0.99) over 17 records, 100k draws: "
                "rank0=%zu rank1=%zu rank2=%zu rank8=%zu rank16=%zu "
                "(hot mass %.0f%%)\n",
                hist[0], hist[1], hist[2], hist[8], hist[16],
                100 * gen.hot_mass());
  }

  std::printf("\n%-14s %-18s %-10s\n", "zipf theta", "hotspots found",
              "accuracy");
  const std::size_t hotspots[] = {1, 5, 9, 13, 16};
  for (double theta : {0.99, 0.8, 0.6}) {
    side::SnoopConfig cfg;
    cfg.model = rnic::DeviceModel::kCX4;
    cfg.seed = ctx.seed;
    cfg.victim_zipf_theta = theta;
    // The diluted victim needs a longer observation than the fixed-address
    // attack of Fig 13 (only ~29% of its accesses hit the hot record at
    // theta 0.99).
    cfg.sweeps_per_trace = ctx.full ? 48 : 24;
    side::SnoopAttack attack(cfg);
    std::size_t ok = 0;
    for (std::size_t hot : hotspots) {
      // Average two captures per target: the hotspot survey is a long-lived
      // observation, unlike Fig 13's single trace.
      auto trace = attack.capture_trace(hot);
      const auto second = attack.capture_trace(hot);
      for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i] = (trace[i] + second[i]) / 2;
      }
      ok += side::SnoopAttack::argmin_candidate(cfg, trace) == hot;
    }
    std::printf("%-14.2f %zu/%zu %17.0f%%\n", theta, ok, std::size(hotspots),
                100.0 * ok / std::size(hotspots));
  }
  std::printf("\nreading: even without a fixed-address victim, the hottest "
              "record dominates the shared-line-cache signature: the attack "
              "recovers the hotspot for Zipfian skews from YCSB's default "
              "0.99 down to 0.6 (hot mass ~13%%), because the runner-up "
              "records split the remaining mass thinly.  This is section "
              "VI's 'expose system access hotspots' scenario, quantified.\n");
  return 0;
}
