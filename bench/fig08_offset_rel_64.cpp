// Reproduces Fig 8: ULI vs *relative* offset (delta between consecutive
// READs) on CX-4: alternate a fixed base address with base+delta and sweep
// delta.  The speculative-descriptor reuse in the translation unit makes
// the delta's own 8 B / 64 B / 2048 B structure visible.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/sweeps.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig08_offset_rel_64, "Fig 8",
                "ULI vs relative offset (delta) between consecutive READs",
                "deltas 0..2304 step 4, 300 samples",
                "deltas 0..4096 step 1, 600 samples") {
  ctx.header("ULI vs relative offset, 64 B READs (Fig 8)",
                "CX-4, same MR, alternating base and base+delta");

  const std::uint64_t base = 64 * 1024;  // far from the MR head
  const std::uint64_t max_delta = ctx.full ? 4096 : 2304;
  const std::uint64_t step = ctx.full ? 1 : 4;
  const std::size_t samples = ctx.full ? 600 : 300;

  const auto curve = revng::sweep_rel_offset(
      rnic::DeviceModel::kCX4, ctx.seed, 64, base, max_delta, step, samples);

  std::vector<double> means;
  for (const auto& p : curve) means.push_back(p.mean);
  std::printf("%s\n",
              sim::ascii_plot(means, 96, 16, "mean ULI (ns) vs delta").c_str());

  double sum8 = 0, n8 = 0, sum64 = 0, n64 = 0, sum_mis = 0, n_mis = 0,
         cross = 0, ncross = 0;
  for (const auto& p : curve) {
    const auto d = static_cast<std::uint64_t>(p.x);
    if (d == 0) continue;
    if ((base % 2048) + d >= 2048 && ncross >= 0) {
      cross += p.mean;
      ++ncross;
    }
    if (d % 64 == 0) {
      sum64 += p.mean;
      ++n64;
    } else if (d % 8 == 0) {
      sum8 += p.mean;
      ++n8;
    } else {
      sum_mis += p.mean;
      ++n_mis;
    }
  }
  std::printf("delta-class mean ULI:  64B-multiple %.1f ns   8B-multiple "
              "%.1f ns   other %.1f ns   2048B-block-crossing %.1f ns\n",
              sum64 / n64, sum8 / n8, sum_mis / n_mis,
              ncross ? cross / ncross : 0.0);
  std::printf("paper shape: drops at 8 B-aligned deltas, stronger at 64 B "
              "multiples, penalty when the delta leaves the 2048 B block.\n");

  if (!ctx.csv_dir.empty()) {
    std::vector<std::vector<double>> cols(2);
    for (const auto& p : curve) {
      cols[0].push_back(p.x);
      cols[1].push_back(p.mean);
    }
    sim::write_csv(ctx.csv_dir + "/fig08.csv", "delta,mean_uli", cols);
  }
  return 0;
}
