// Table I's other volatile-channel prior work: Kim & Hur (ICTC'22) use
// PCIe contention through an RDMA NIC as a side channel, but footnote 4
// notes "it can only steal coarse information ... rather than reveal
// detailed data".  This bench reproduces that granularity gap:
//
//   * Kim-style observer: times its own bulk READs (PCIe-bound) and
//     detects WHEN a victim's DMA-heavy phase is active — a binary
//     activity signal with window-level resolution.
//   * Ragnar (Fig 13): recovers WHICH 64 B address the victim touches.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/flow.hpp"
#include "revng/testbed.hpp"
#include "side/snoop.hpp"
#include "verbs/context.hpp"

using namespace ragnar;

namespace {

// The observer's per-window mean READ latency while a victim runs bursts.
struct CoarseResult {
  std::vector<double> window_lat_us;
  std::vector<int> truth_active;  // ground truth per window
};

CoarseResult run_coarse_observer(std::uint64_t seed) {
  revng::Testbed bed(rnic::DeviceModel::kCX5, seed, 2);
  auto conn = bed.connect(0, 1, 4, /*tc=*/1);
  auto mr = conn.server_pd->register_mr(1u << 20);

  // Victim: alternating 60 us active (bulk writes) / 60 us idle phases.
  constexpr int kWindows = 16;
  const sim::SimDur phase = sim::us(60);
  CoarseResult res;
  std::vector<std::unique_ptr<revng::Flow>> victim_bursts;
  for (int w = 0; w < kWindows; ++w) res.truth_active.push_back(w % 2);
  for (int w = 0; w < kWindows; ++w) {
    if (res.truth_active[static_cast<std::size_t>(w)]) {
      revng::FlowSpec v;
      v.opcode = verbs::WrOpcode::kRdmaWrite;
      v.msg_size = 16384;
      v.qp_num = 2;
      v.depth_per_qp = 8;
      v.start = bed.sched().now() + static_cast<sim::SimDur>(w) * phase;
      v.duration = phase;
      victim_bursts.push_back(std::make_unique<revng::Flow>(bed, 1, v));
    }
  }

  // Observer: paced 8 KB READs (PCIe/link-sensitive), timed per window.
  std::vector<double> sums(kWindows, 0);
  std::vector<int> counts(kWindows, 0);
  const sim::SimTime t0 = bed.sched().now();
  const sim::SimTime t_end = t0 + static_cast<sim::SimDur>(kWindows) * phase;
  while (bed.sched().now() < t_end) {
    verbs::SendWr wr;
    wr.opcode = verbs::WrOpcode::kRdmaRead;
    wr.local_addr = conn.client_mr->addr();
    wr.length = 8192;
    wr.remote_addr = mr->addr();
    wr.rkey = mr->rkey();
    conn.qp().post_send(wr);
    conn.cq().run_until_available(1);
    verbs::Wc wc;
    conn.cq().poll_one(&wc);
    const auto w = static_cast<std::size_t>((wc.completed_at - t0) / phase);
    if (w < sums.size()) {
      sums[w] += sim::to_us(wc.latency());
      ++counts[w];
    }
    bed.sched().run_until(bed.sched().now() + sim::us(2));
  }
  for (int w = 0; w < kWindows; ++w) {
    res.window_lat_us.push_back(counts[w] ? sums[w] / counts[w] : 0.0);
  }
  return res;
}

}  // namespace

RAGNAR_SCENARIO(claim_pcie_coarse_baseline, "fn 4",
                "Kim-style coarse PCIe observer vs Ragnar 64 B address recovery",
                "16 windows + 3 victims",
                "16 windows + 3 victims") {
  ctx.header("coarse PCIe-contention baseline (Kim, Table I)",
                "activity windows vs Ragnar's 64 B address recovery");

  const CoarseResult res = run_coarse_observer(ctx.seed);
  double on = 0, off = 0;
  int n_on = 0, n_off = 0;
  std::printf("\nobserver READ latency per 60 us window (victim "
              "active/idle):\n  ");
  for (std::size_t w = 0; w < res.window_lat_us.size(); ++w) {
    std::printf("%s%.1f ", res.truth_active[w] ? "A:" : "i:",
                res.window_lat_us[w]);
    (res.truth_active[w] ? on : off) += res.window_lat_us[w];
    (res.truth_active[w] ? n_on : n_off) += 1;
  }
  on /= n_on;
  off /= n_off;
  // Threshold at the midpoint: how many windows classify correctly?
  const double thr = (on + off) / 2;
  int correct = 0;
  for (std::size_t w = 0; w < res.window_lat_us.size(); ++w) {
    correct += ((res.window_lat_us[w] > thr) ==
                (res.truth_active[w] == 1));
  }
  std::printf("\n\nactive-window latency %.2f us vs idle %.2f us -> "
              "activity detection %d/%zu windows\n",
              on, off, correct, res.window_lat_us.size());

  // Ragnar granularity on the same device class.
  side::SnoopConfig cfg;
  cfg.model = rnic::DeviceModel::kCX5;
  cfg.seed = ctx.seed;
  side::SnoopAttack attack(cfg);
  std::size_t ok = 0;
  for (std::size_t victim : {std::size_t{3}, std::size_t{9}, std::size_t{14}}) {
    ok += side::SnoopAttack::argmin_candidate(cfg,
                                              attack.capture_trace(victim)) ==
          victim;
  }
  std::printf("Ragnar on the same NIC: %zu/3 victim *addresses* recovered "
              "at 64 B granularity.\n",
              ok);
  std::printf("\npaper footnote 4: the PCIe channel 'can only steal coarse "
              "information ... rather than reveal detailed data' — "
              "activity windows vs addresses, reproduced.\n");
  return 0;
}
