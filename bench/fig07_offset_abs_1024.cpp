// Reproduces Fig 7: ULI vs absolute offset for 1024 B READs on CX-4.  The
// periodic structure persists but its relative amplitude shrinks: payload
// movement dominates per-message time at 1 KB.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/sweeps.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig07_offset_abs_1024, "Fig 7",
                "ULI vs absolute offset, 1024 B READs (amplitude shrinks)",
                "offsets 0..2304 step 8, 300 samples",
                "offsets 0..4096 step 2, 600 samples") {
  ctx.header("ULI vs absolute offset, 1024 B READs (Fig 7)",
                "CX-4, same MR, single swept target");

  const std::uint64_t max_offset = ctx.full ? 4096 : 2304;
  const std::uint64_t step = ctx.full ? 2 : 8;
  const std::size_t samples = ctx.full ? 600 : 300;

  const auto c64 = revng::sweep_abs_offset(rnic::DeviceModel::kCX4, ctx.seed,
                                           64, max_offset, step, samples);
  const auto c1k = revng::sweep_abs_offset(rnic::DeviceModel::kCX4, ctx.seed,
                                           1024, max_offset, step, samples);

  std::vector<double> means;
  for (const auto& p : c1k) means.push_back(p.mean);
  std::printf("%s\n", sim::ascii_plot(means, 96, 16,
                                      "mean ULI (ns) vs offset, 1024 B READs")
                          .c_str());

  auto spread = [](const revng::UliCurve& c) {
    double lo = 1e18, hi = -1e18, mean = 0;
    for (const auto& p : c) {
      lo = std::min(lo, p.mean);
      hi = std::max(hi, p.mean);
      mean += p.mean;
    }
    mean /= static_cast<double>(c.size());
    return (hi - lo) / mean;  // relative peak-to-peak amplitude
  };
  std::printf("relative offset-effect amplitude:  64 B READs %.3f   "
              "1024 B READs %.3f\n",
              spread(c64), spread(c1k));
  std::printf("paper shape: same 2's-power periodicity, smaller relative "
              "amplitude at 1 KB.\n");

  if (!ctx.csv_dir.empty()) {
    std::vector<std::vector<double>> cols(2);
    for (const auto& p : c1k) {
      cols[0].push_back(p.x);
      cols[1].push_back(p.mean);
    }
    sim::write_csv(ctx.csv_dir + "/fig07.csv", "offset,mean_uli_1024B", cols);
  }
  return 0;
}
