// Statistical validation: the reproduced Table V numbers are not a lucky
// seed.  Re-runs the inter-MR and intra-MR channels over several seeds and
// reports mean +/- sd of raw bandwidth and error rate per device.
//
// Each (channel, device, seed) run is one harness trial; the per-cell
// statistics are folded in submission order after the pool drains, so the
// printed table is byte-identical for any --jobs value.
#include <cmath>
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/uli_channel.hpp"
#include "sim/stats.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(ablation_seed_stability, "Table V",
                "Table V cells re-run across independent seeds: mean +/- sd",
                "5 seeds x 192 bits",
                "10 seeds x 512 bits") {
  ctx.header("seed stability of the covert-channel results",
                "Table V cells across independent seeds");

  const int n_seeds = ctx.full ? 10 : 5;
  const std::size_t nbits = ctx.full ? 512 : 192;

  struct CellRun {
    double kbps = 0;
    double err_pct = 0;
  };
  const covert::UliChannelKind kinds[] = {covert::UliChannelKind::kInterMr,
                                          covert::UliChannelKind::kIntraMr};
  std::vector<CellRun> runs(2 * 3 * static_cast<std::size_t>(n_seeds));

  harness::SweepRunner sweep;
  std::size_t slot = 0;
  for (auto kind : kinds) {
    for (auto model : scenario::kAllDevices) {
      for (int s = 0; s < n_seeds; ++s, ++slot) {
        const std::uint64_t seed = ctx.seed + 1000 * (s + 1);
        char label[64];
        std::snprintf(label, sizeof label, "%s:%s:s%d",
                      kind == covert::UliChannelKind::kInterMr ? "inter"
                                                               : "intra",
                      rnic::device_name(model), s);
        sweep.add(label,
                  [&runs, slot, kind, model, seed, nbits](harness::TrialContext&) {
                    auto cfg = covert::UliChannelConfig::best_for(model, kind, seed);
                    covert::UliCovertChannel ch(cfg);
                    sim::Xoshiro256 rng(seed + 7);
                    const auto run = ch.transmit(covert::random_bits(nbits, rng));
                    runs[slot].kbps = run.raw_bps() / 1e3;
                    runs[slot].err_pct = 100 * run.error_rate();
                    harness::Record rec;
                    rec.set("kbps", runs[slot].kbps, 3);
                    rec.set("err_pct", runs[slot].err_pct, 3);
                    return rec;
                  });
      }
    }
  }
  ctx.run_sweep(sweep, "ablation_seed_stability");

  std::printf("\n%-10s %-12s | %-22s | %-18s\n", "channel", "device",
              "raw Kbps (mean+/-sd)", "error %% (mean+/-sd)");
  slot = 0;
  for (auto kind : kinds) {
    for (auto model : scenario::kAllDevices) {
      sim::RunningStats kbps, err;
      for (int s = 0; s < n_seeds; ++s, ++slot) {
        kbps.add(runs[slot].kbps);
        err.add(runs[slot].err_pct);
      }
      std::printf("%-10s %-12s | %8.1f +/- %-8.2f | %6.2f +/- %-6.2f\n",
                  kind == covert::UliChannelKind::kInterMr ? "inter-MR"
                                                           : "intra-MR",
                  rnic::device_name(model), kbps.mean(), kbps.stddev(),
                  err.mean(), err.stddev());
    }
  }
  std::printf("\nreading: raw bandwidth is seed-invariant (it is set by the "
              "symbol clock); error rates vary by a few points with the "
              "bystander realization but stay in Table V's band.\n");
  return 0;
}
