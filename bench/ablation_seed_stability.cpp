// Statistical validation: the reproduced Table V numbers are not a lucky
// seed.  Re-runs the inter-MR and intra-MR channels over several seeds and
// reports mean +/- sd of raw bandwidth and error rate per device.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "covert/uli_channel.hpp"
#include "sim/stats.hpp"

using namespace ragnar;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::header("seed stability of the covert-channel results",
                "Table V cells across independent seeds", args);

  const int n_seeds = args.full ? 10 : 5;
  const std::size_t nbits = args.full ? 512 : 192;

  std::printf("\n%-10s %-12s | %-22s | %-18s\n", "channel", "device",
              "raw Kbps (mean+/-sd)", "error %% (mean+/-sd)");
  for (auto kind :
       {covert::UliChannelKind::kInterMr, covert::UliChannelKind::kIntraMr}) {
    for (auto model : bench::kAllDevices) {
      sim::RunningStats kbps, err;
      for (int s = 0; s < n_seeds; ++s) {
        const std::uint64_t seed = args.seed + 1000 * (s + 1);
        auto cfg = covert::UliChannelConfig::best_for(model, kind, seed);
        covert::UliCovertChannel ch(cfg);
        sim::Xoshiro256 rng(seed + 7);
        const auto run = ch.transmit(covert::random_bits(nbits, rng));
        kbps.add(run.raw_bps() / 1e3);
        err.add(100 * run.error_rate());
      }
      std::printf("%-10s %-12s | %8.1f +/- %-8.2f | %6.2f +/- %-6.2f\n",
                  kind == covert::UliChannelKind::kInterMr ? "inter-MR"
                                                           : "intra-MR",
                  rnic::device_name(model), kbps.mean(), kbps.stddev(),
                  err.mean(), err.stddev());
    }
  }
  std::printf("\nreading: raw bandwidth is seed-invariant (it is set by the "
              "symbol clock); error rates vary by a few points with the "
              "bystander realization but stay in Table V's band.\n");
  return 0;
}
