// Reproduces Fig 5: ULI when alternately accessing two addresses in the
// same remote MR vs in two different remote MRs, across READ message sizes
// (CX-4, 2 QPs, 2 MB MRs on huge pages).  The cross-MR curve sits visibly
// above the same-MR curve — the Grain-III observable behind section V-C.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/sweeps.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig05_uli_inter_mr, "Fig 5",
                "ULI same-MR vs cross-MR alternation across READ sizes",
                "8 sizes x 1200 samples",
                "8 sizes x 4000 samples") {
  ctx.header("ULI vs same/different remote MR vs message size (Fig 5)",
                "alternating 0@MR#0 with 1024@MR#0 / 1024@MR#1, CX-4 READs");

  const std::vector<std::uint32_t> sizes{64,  128,  256,  512,
                                         1024, 2048, 4096, 8192};
  const std::size_t samples = ctx.full ? 4000 : 1200;

  const auto same = revng::sweep_inter_mr(rnic::DeviceModel::kCX4, ctx.seed,
                                          false, sizes, samples);
  const auto diff = revng::sweep_inter_mr(rnic::DeviceModel::kCX4, ctx.seed,
                                          true, sizes, samples);

  std::printf("\n%-8s | %-28s | %-28s | ratio\n", "size", "same MR (p10/mean/p90)",
              "different MR (p10/mean/p90)");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-8u | %7.1f /%8.1f /%8.1f | %7.1f /%8.1f /%8.1f | %.3f\n",
                sizes[i], same[i].p10, same[i].mean, same[i].p90, diff[i].p10,
                diff[i].mean, diff[i].p90, diff[i].mean / same[i].mean);
  }
  std::printf("\npaper shape: different-MR ULI > same-MR ULI at every size "
              "(MR context switch), gap narrows as payload time dominates.\n");

  if (!ctx.csv_dir.empty()) {
    std::vector<std::vector<double>> cols(3);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      cols[0].push_back(sizes[i]);
      cols[1].push_back(same[i].mean);
      cols[2].push_back(diff[i].mean);
    }
    sim::write_csv(ctx.csv_dir + "/fig05.csv", "size,same_mr_uli,diff_mr_uli",
                   cols);
  }
  return 0;
}
