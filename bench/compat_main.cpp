// Thin back-compat wrapper (built under RAGNAR_BUILD_COMPAT_BENCHES): gives
// one registered scenario back its historical binary name and flag set, so
//   ./fig06_offset_abs_64 --seed 7 --csv out/
// behaves exactly like
//   ./ragnar run fig06_offset_abs_64 --seed 7 --csv-dir out/
#include "scenario/cli.hpp"

#ifndef RAGNAR_COMPAT_SCENARIO
#error "compat_main.cpp requires -DRAGNAR_COMPAT_SCENARIO=<scenario name>"
#endif

#define RAGNAR_STR2(x) #x
#define RAGNAR_STR(x) RAGNAR_STR2(x)

int main(int argc, char** argv) {
  return ragnar::scenario::run_compat(RAGNAR_STR(RAGNAR_COMPAT_SCENARIO),
                                      argc, argv);
}
