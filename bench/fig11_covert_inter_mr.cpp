// Reproduces Fig 11: the inter-MR resource channel's normalized receiver
// ULI over a folded two-bit period on CX-4, CX-5 and CX-6 under the paper's
// best parameter combinations (footnote 10).
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/uli_channel.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig11_covert_inter_mr, "Fig 11",
                "inter-MR channel normalized folded ULI on CX-4/5/6",
                "96 alternating bits per device",
                "256 alternating bits per device") {
  ctx.header("inter-MR resource-based channel (Fig 11)",
                "best params per device (footnote 10); folded two-bit period");

  for (auto model : scenario::kAllDevices) {
    auto cfg = covert::UliChannelConfig::best_for(
        model, covert::UliChannelKind::kInterMr, ctx.seed);
    covert::UliCovertChannel ch(cfg);
    std::vector<int> payload;
    for (int i = 0; i < (ctx.full ? 256 : 96); ++i) payload.push_back(i % 2);
    const auto run = ch.transmit(payload);

    // Normalized folded levels (the figure's y-axis is normalized ULI).
    double l0 = 0, l1 = 0;
    int n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < run.rx_metric.size(); ++i) {
      (payload[i] ? l1 : l0) += run.rx_metric[i];
      (payload[i] ? n1 : n0) += 1;
    }
    l0 /= n0;
    l1 /= n1;
    const double mid = (l0 + l1) / 2;

    std::printf("\n%s: tx/rx reads %u B, SQ %u, bit %s\n",
                rnic::device_name(model), cfg.tx_read_size,
                cfg.tx_queue_depth,
                sim::format_duration(cfg.bit_period).c_str());
    std::printf("  normalized ULI: bit0 %.4f, bit1 %.4f  (raw %.1f / %.1f "
                "ns)\n",
                l0 / mid, l1 / mid, l0, l1);
    std::printf("  alternating-stream error rate %.2f%%\n",
                100 * run.error_rate());
  }
  std::printf("\npaper shape: bit-1 (cross-MR) windows sit above bit-0 "
              "windows on every device.\n");
  return 0;
}
