// Reproduces the paper's defense analysis (Table I "Defended" column +
// section VII): a HARMONIC-style Grain-I/II/III monitor catches classic
// availability attacks but not Ragnar's Grain-III/IV channels; latency
// noise only helps once it is large enough to hurt benign tenants.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "covert/uli_channel.hpp"
#include "defense/harmonic.hpp"
#include "defense/mitigation.hpp"
#include "revng/flow.hpp"
#include "revng/testbed.hpp"

using namespace ragnar;

namespace {

// Run a flow under the monitor; report whether the tenant was flagged.
bool monitored_flow(rnic::DeviceModel model, std::uint64_t seed,
                    const revng::FlowSpec& spec, double* flag_rate) {
  revng::Testbed bed(model, seed, 1);
  defense::HarmonicMonitor mon(bed.sched(), bed.server().device(),
                               sim::ms(1));
  mon.start();
  revng::Flow f(bed, 0, spec);
  bed.sched().run_while([&] { return !f.finished(); });
  const auto tenant = bed.client(0).device().node();
  if (flag_rate != nullptr) *flag_rate = mon.flag_rate(tenant);
  return mon.ever_flagged(tenant);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::header("defense ablation (Table I / section VII)",
                "HARMONIC-style Grain-I/II/III monitor + noise mitigation",
                args);
  const auto model = rnic::DeviceModel::kCX4;

  std::printf("\n--- detection matrix -------------------------------------\n");
  std::printf("%-44s %-10s %-10s\n", "workload", "flagged", "flag rate");

  {
    revng::FlowSpec flood;
    flood.opcode = verbs::WrOpcode::kRdmaWrite;
    flood.msg_size = 64;
    flood.qp_num = 4;
    flood.depth_per_qp = 16;
    flood.duration = sim::ms(4);
    double rate = 0;
    const bool f = monitored_flow(model, args.seed, flood, &rate);
    std::printf("%-44s %-10s %.0f%%\n",
                "Grain-II availability attack (64B write flood)",
                f ? "YES" : "no", 100 * rate);
  }
  {
    revng::FlowSpec flood;
    flood.opcode = verbs::WrOpcode::kFetchAdd;
    flood.qp_num = 4;
    flood.depth_per_qp = 16;
    flood.duration = sim::ms(4);
    double rate = 0;
    const bool f = monitored_flow(model, args.seed + 1, flood, &rate);
    std::printf("%-44s %-10s %.0f%%\n", "Grain-II atomic flood",
                f ? "YES" : "no", 100 * rate);
  }
  {
    revng::FlowSpec benign;
    benign.opcode = verbs::WrOpcode::kRdmaRead;
    benign.msg_size = 4096;
    benign.qp_num = 1;
    benign.depth_per_qp = 2;
    benign.duration = sim::ms(4);
    double rate = 0;
    const bool f = monitored_flow(model, args.seed + 2, benign, &rate);
    std::printf("%-44s %-10s %.0f%%\n", "benign tenant (4KB reads, ~10Gb/s)",
                f ? "YES" : "no", 100 * rate);
  }

  // Ragnar channels under the same monitor.
  for (auto kind :
       {covert::UliChannelKind::kInterMr, covert::UliChannelKind::kIntraMr}) {
    auto cfg = covert::UliChannelConfig::best_for(model, kind, args.seed);
    covert::UliCovertChannel ch(cfg);
    defense::HarmonicMonitor mon(ch.scheduler(), ch.server_device(),
                                 sim::ms(1));
    mon.start();
    sim::Xoshiro256 rng(args.seed + 3);
    const auto run = ch.transmit(covert::random_bits(128, rng));
    const bool tx_f = mon.ever_flagged(ch.tx_node());
    const bool rx_f = mon.ever_flagged(ch.rx_node());
    char label[64];
    std::snprintf(label, sizeof label, "Ragnar %s channel (err %.1f%%)",
                  kind == covert::UliChannelKind::kInterMr ? "inter-MR"
                                                           : "intra-MR",
                  100 * run.error_rate());
    std::printf("%-44s %-10s tx=%s rx=%s\n", label,
                (tx_f || rx_f) ? "YES" : "no", tx_f ? "YES" : "no",
                rx_f ? "YES" : "no");
  }

  std::printf("\npaper: HARMONIC mitigates Grain-II attacks (Zhang/Kong/"
              "HUSKY) but not Ragnar's Grain-III/IV channels.\n");

  std::printf("\n--- noise-injection mitigation sweep ---------------------\n");
  const std::vector<sim::SimDur> levels{0,            sim::ns(200),
                                        sim::ns(800), sim::us(2),
                                        sim::us(8),   sim::us(20)};
  const auto points = defense::sweep_noise_mitigation(
      model, args.seed + 4, levels, args.full ? 256 : 96);
  std::printf("%-12s %-12s %-14s %-16s %-14s\n", "noise max", "chan err",
              "chan eff Kbps", "benign mean lat", "benign p99 lat");
  for (const auto& p : points) {
    std::printf("%-12s %-11.2f%% %-14.1f %-16.1f %-14.1f\n",
                sim::format_duration(p.noise_max).c_str(),
                100 * p.channel_error, p.channel_effective_bps / 1e3,
                p.benign_mean_latency_ns, p.benign_p99_latency_ns);
  }
  std::printf("\npaper: sub-microsecond noise leaves detectable traces; "
              "full masking costs benign tenants microseconds per op.\n");

  std::printf("\n--- hardware partitioning (section VII) -------------------\n");
  // Translation-unit partitioning + TDM admission slots: the only
  // mitigation that actually kills the volatile channels — at a price.
  for (const bool partitioned : {false, true}) {
    // Channel viability.
    auto cfg = covert::UliChannelConfig::best_for(
        model, covert::UliChannelKind::kIntraMr, args.seed + 5);
    cfg.ambient_intensity = 0;
    covert::UliCovertChannel ch(cfg);
    ch.server_device().set_tenant_isolation(partitioned);
    sim::Xoshiro256 rng(args.seed + 6);
    const auto run = ch.transmit(covert::random_bits(96, rng));

    // Benign cost: a small-READ tenant's throughput.
    revng::Testbed bed(model, args.seed + 7, 1);
    bed.server().device().set_tenant_isolation(partitioned);
    revng::FlowSpec benign;
    benign.opcode = verbs::WrOpcode::kRdmaRead;
    benign.msg_size = 64;
    benign.qp_num = 2;
    benign.depth_per_qp = 16;
    benign.duration = sim::us(400);
    revng::Flow f(bed, 0, benign);
    bed.sched().run_while([&] { return !f.finished(); });

    std::printf("partitioning %-4s: intra-MR channel err %5.1f%%   benign "
                "64B-READ rate %.2f Mops\n",
                partitioned ? "ON" : "off", 100 * run.error_rate(),
                static_cast<double>(f.ops_completed()) /
                    sim::to_us(sim::us(400)));
  }
  std::printf("reading: partitioning + TDM slotting kills the Grain-IV "
              "channel (err -> ~50%%) but clamps every tenant's small-op "
              "rate to the TDM slot clock — the \"costly and degrades "
              "performance\" trade-off of section VII.\n");

  std::printf("\n--- native Grain-I flow control ---------------------------\n");
  {
    auto cfg = covert::UliChannelConfig::best_for(
        model, covert::UliChannelKind::kIntraMr, args.seed + 8);
    cfg.ambient_intensity = 0;
    covert::UliCovertChannel ch(cfg);
    ch.server_device().set_tenant_pacing_gbps(10.0);
    sim::Xoshiro256 rng(args.seed + 9);
    const auto run = ch.transmit(covert::random_bits(96, rng));
    std::printf("per-tenant 10 Gb/s pacing: intra-MR channel err %.1f%% — "
                "the Kbps-scale channel never hits a bandwidth cap.\n",
                100 * run.error_rate());
  }
  return 0;
}
