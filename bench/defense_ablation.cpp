// Reproduces the paper's defense analysis (Table I "Defended" column +
// section VII): a HARMONIC-style Grain-I/II/III monitor catches classic
// availability attacks but not Ragnar's Grain-III/IV channels; latency
// noise only helps once it is large enough to hurt benign tenants.
//
// Every scenario (each monitored workload, each noise level, each
// partitioning round, the pacing round) is an independent simulation, so the
// whole ablation fans out across the harness thread pool; the report prints
// in fixed scenario order and is byte-identical for any --jobs value.
// Defense knobs are applied through the declarative rnic::RuntimeConfig API.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/uli_channel.hpp"
#include "defense/harmonic.hpp"
#include "defense/mitigation.hpp"
#include "revng/flow.hpp"
#include "revng/testbed.hpp"

using namespace ragnar;

namespace {

// Run a flow under the monitor; report whether the tenant was flagged.
bool monitored_flow(rnic::DeviceModel model, std::uint64_t seed,
                    const revng::FlowSpec& spec, double* flag_rate) {
  revng::Testbed bed(model, seed, 1);
  defense::HarmonicMonitor mon(bed.sched(), bed.server().device(),
                               sim::ms(1));
  mon.start();
  revng::Flow f(bed, 0, spec);
  bed.sched().run_while([&] { return !f.finished(); });
  const auto tenant = bed.client(0).device().node();
  if (flag_rate != nullptr) *flag_rate = mon.flag_rate(tenant);
  return mon.ever_flagged(tenant);
}

struct FlaggedResult {
  bool flagged = false;
  double rate = 0;
};

struct ChannelResult {
  bool tx_flagged = false;
  bool rx_flagged = false;
  double error = 0;
};

struct PartitionResult {
  double channel_error = 0;
  double benign_mops = 0;
};

}  // namespace

RAGNAR_SCENARIO(defense_ablation, "Table I",
                "HARMONIC-style monitor + noise/partitioning/pacing mitigations",
                "96-bit noise-sweep probes",
                "256-bit noise-sweep probes") {
  ctx.header("defense ablation (Table I / section VII)",
                "HARMONIC-style Grain-I/II/III monitor + noise mitigation");
  const auto model = rnic::DeviceModel::kCX4;

  // --- build the trial grid ------------------------------------------------
  harness::SweepRunner sweep;

  FlaggedResult write_flood, atomic_flood, benign_tenant;
  sweep.add("monitor:write_flood", [&](harness::TrialContext&) {
    revng::FlowSpec flood;
    flood.opcode = verbs::WrOpcode::kRdmaWrite;
    flood.msg_size = 64;
    flood.qp_num = 4;
    flood.depth_per_qp = 16;
    flood.duration = sim::ms(4);
    write_flood.flagged =
        monitored_flow(model, ctx.seed, flood, &write_flood.rate);
    harness::Record rec;
    rec.set("flagged", std::uint64_t{write_flood.flagged});
    rec.set("flag_rate", write_flood.rate, 4);
    return rec;
  });
  sweep.add("monitor:atomic_flood", [&](harness::TrialContext&) {
    revng::FlowSpec flood;
    flood.opcode = verbs::WrOpcode::kFetchAdd;
    flood.qp_num = 4;
    flood.depth_per_qp = 16;
    flood.duration = sim::ms(4);
    atomic_flood.flagged =
        monitored_flow(model, ctx.seed + 1, flood, &atomic_flood.rate);
    harness::Record rec;
    rec.set("flagged", std::uint64_t{atomic_flood.flagged});
    rec.set("flag_rate", atomic_flood.rate, 4);
    return rec;
  });
  sweep.add("monitor:benign_tenant", [&](harness::TrialContext&) {
    revng::FlowSpec benign;
    benign.opcode = verbs::WrOpcode::kRdmaRead;
    benign.msg_size = 4096;
    benign.qp_num = 1;
    benign.depth_per_qp = 2;
    benign.duration = sim::ms(4);
    benign_tenant.flagged =
        monitored_flow(model, ctx.seed + 2, benign, &benign_tenant.rate);
    harness::Record rec;
    rec.set("flagged", std::uint64_t{benign_tenant.flagged});
    rec.set("flag_rate", benign_tenant.rate, 4);
    return rec;
  });

  // Ragnar channels under the same monitor.
  const covert::UliChannelKind kinds[] = {covert::UliChannelKind::kInterMr,
                                          covert::UliChannelKind::kIntraMr};
  ChannelResult chan_results[2];
  for (int k = 0; k < 2; ++k) {
    sweep.add(k == 0 ? "monitor:ragnar_inter_mr" : "monitor:ragnar_intra_mr",
              [&, k](harness::TrialContext&) {
                auto cfg =
                    covert::UliChannelConfig::best_for(model, kinds[k], ctx.seed);
                covert::UliCovertChannel ch(cfg);
                defense::HarmonicMonitor mon(ch.scheduler(), ch.server_device(),
                                             sim::ms(1));
                mon.start();
                sim::Xoshiro256 rng(ctx.seed + 3);
                const auto run = ch.transmit(covert::random_bits(128, rng));
                chan_results[k].tx_flagged = mon.ever_flagged(ch.tx_node());
                chan_results[k].rx_flagged = mon.ever_flagged(ch.rx_node());
                chan_results[k].error = run.error_rate();
                harness::Record rec;
                rec.set("err", chan_results[k].error, 4);
                rec.set("tx_flagged", std::uint64_t{chan_results[k].tx_flagged});
                rec.set("rx_flagged", std::uint64_t{chan_results[k].rx_flagged});
                return rec;
              });
  }

  // Noise-injection sweep: one trial per level.  sweep_noise_mitigation
  // derives everything from (model, seed, level), so per-level calls match
  // the historical batched call bit-for-bit.
  const std::vector<sim::SimDur> levels{0,            sim::ns(200),
                                        sim::ns(800), sim::us(2),
                                        sim::us(8),   sim::us(20)};
  std::vector<defense::NoisePoint> points(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof label, "noise:%s",
                  sim::format_duration(levels[i]).c_str());
    sweep.add(label, [&, i](harness::TrialContext&) {
      const auto one = defense::sweep_noise_mitigation(
          model, ctx.seed + 4, {levels[i]}, ctx.full ? 256 : 96);
      points[i] = one.front();
      harness::Record rec;
      rec.set("noise_ns", sim::to_ns(points[i].noise_max), 1);
      rec.set("chan_err", points[i].channel_error, 4);
      rec.set("chan_eff_kbps", points[i].channel_effective_bps / 1e3, 3);
      rec.set("benign_mean_ns", points[i].benign_mean_latency_ns, 2);
      rec.set("benign_p99_ns", points[i].benign_p99_latency_ns, 2);
      return rec;
    });
  }

  // Hardware partitioning (section VII): translation-unit partitioning +
  // TDM admission slots — the only mitigation that actually kills the
  // volatile channels, at a price.
  PartitionResult part_results[2];
  for (int p = 0; p < 2; ++p) {
    const bool partitioned = p == 1;
    sweep.add(partitioned ? "partitioning:on" : "partitioning:off",
              [&, p, partitioned](harness::TrialContext&) {
                // Channel viability.
                auto cfg = covert::UliChannelConfig::best_for(
                    model, covert::UliChannelKind::kIntraMr, ctx.seed + 5);
                cfg.ambient_intensity = 0;
                covert::UliCovertChannel ch(cfg);
                rnic::RuntimeConfig dev_cfg =
                    ch.server_device().runtime_config();
                dev_cfg.tenant_isolation = partitioned;
                ch.server_device().configure(dev_cfg);
                sim::Xoshiro256 rng(ctx.seed + 6);
                const auto run = ch.transmit(covert::random_bits(96, rng));
                part_results[p].channel_error = run.error_rate();

                // Benign cost: a small-READ tenant's throughput.
                revng::Testbed bed(model, ctx.seed + 7, 1);
                rnic::RuntimeConfig bed_cfg =
                    bed.server().device().runtime_config();
                bed_cfg.tenant_isolation = partitioned;
                bed.server().device().configure(bed_cfg);
                revng::FlowSpec benign;
                benign.opcode = verbs::WrOpcode::kRdmaRead;
                benign.msg_size = 64;
                benign.qp_num = 2;
                benign.depth_per_qp = 16;
                benign.duration = sim::us(400);
                revng::Flow f(bed, 0, benign);
                bed.sched().run_while([&] { return !f.finished(); });
                part_results[p].benign_mops =
                    static_cast<double>(f.ops_completed()) /
                    sim::to_us(sim::us(400));
                harness::Record rec;
                rec.set("chan_err", part_results[p].channel_error, 4);
                rec.set("benign_mops", part_results[p].benign_mops, 4);
                return rec;
              });
  }

  // Native Grain-I flow control.
  double pacing_err = 0;
  sweep.add("grain1:pacing_10g", [&](harness::TrialContext&) {
    auto cfg = covert::UliChannelConfig::best_for(
        model, covert::UliChannelKind::kIntraMr, ctx.seed + 8);
    cfg.ambient_intensity = 0;
    covert::UliCovertChannel ch(cfg);
    rnic::RuntimeConfig paced = ch.server_device().runtime_config();
    paced.tenant_pacing_gbps = 10.0;
    ch.server_device().configure(paced);
    sim::Xoshiro256 rng(ctx.seed + 9);
    pacing_err = ch.transmit(covert::random_bits(96, rng)).error_rate();
    harness::Record rec;
    rec.set("chan_err", pacing_err, 4);
    return rec;
  });

  // --- execute and report --------------------------------------------------
  ctx.run_sweep(sweep, "defense_ablation");

  std::printf("\n--- detection matrix -------------------------------------\n");
  std::printf("%-44s %-10s %-10s\n", "workload", "flagged", "flag rate");
  std::printf("%-44s %-10s %.0f%%\n",
              "Grain-II availability attack (64B write flood)",
              write_flood.flagged ? "YES" : "no", 100 * write_flood.rate);
  std::printf("%-44s %-10s %.0f%%\n", "Grain-II atomic flood",
              atomic_flood.flagged ? "YES" : "no", 100 * atomic_flood.rate);
  std::printf("%-44s %-10s %.0f%%\n", "benign tenant (4KB reads, ~10Gb/s)",
              benign_tenant.flagged ? "YES" : "no", 100 * benign_tenant.rate);
  for (int k = 0; k < 2; ++k) {
    char label[64];
    std::snprintf(label, sizeof label, "Ragnar %s channel (err %.1f%%)",
                  kinds[k] == covert::UliChannelKind::kInterMr ? "inter-MR"
                                                               : "intra-MR",
                  100 * chan_results[k].error);
    std::printf("%-44s %-10s tx=%s rx=%s\n", label,
                (chan_results[k].tx_flagged || chan_results[k].rx_flagged)
                    ? "YES"
                    : "no",
                chan_results[k].tx_flagged ? "YES" : "no",
                chan_results[k].rx_flagged ? "YES" : "no");
  }

  std::printf("\npaper: HARMONIC mitigates Grain-II attacks (Zhang/Kong/"
              "HUSKY) but not Ragnar's Grain-III/IV channels.\n");

  std::printf("\n--- noise-injection mitigation sweep ---------------------\n");
  std::printf("%-12s %-12s %-14s %-16s %-14s\n", "noise max", "chan err",
              "chan eff Kbps", "benign mean lat", "benign p99 lat");
  for (const auto& p : points) {
    std::printf("%-12s %-11.2f%% %-14.1f %-16.1f %-14.1f\n",
                sim::format_duration(p.noise_max).c_str(),
                100 * p.channel_error, p.channel_effective_bps / 1e3,
                p.benign_mean_latency_ns, p.benign_p99_latency_ns);
  }
  std::printf("\npaper: sub-microsecond noise leaves detectable traces; "
              "full masking costs benign tenants microseconds per op.\n");

  std::printf("\n--- hardware partitioning (section VII) -------------------\n");
  for (int p = 0; p < 2; ++p) {
    std::printf("partitioning %-4s: intra-MR channel err %5.1f%%   benign "
                "64B-READ rate %.2f Mops\n",
                p == 1 ? "ON" : "off", 100 * part_results[p].channel_error,
                part_results[p].benign_mops);
  }
  std::printf("reading: partitioning + TDM slotting kills the Grain-IV "
              "channel (err -> ~50%%) but clamps every tenant's small-op "
              "rate to the TDM slot clock — the \"costly and degrades "
              "performance\" trade-off of section VII.\n");

  std::printf("\n--- native Grain-I flow control ---------------------------\n");
  std::printf("per-tenant 10 Gb/s pacing: intra-MR channel err %.1f%% — "
              "the Kbps-scale channel never hits a bandwidth cap.\n",
              100 * pacing_err);
  return 0;
}
