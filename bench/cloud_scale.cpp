// cloud_scale: the sharded-engine scale-out scenario (docs/ENGINE.md §6).
// R racks — per rack one client host, one server host, and a ToR — joined
// by a full ToR-to-ToR mesh.  T tenants are spread round-robin over the
// racks; tenant i on rack r runs a closed-loop stream of 2 KiB READs
// against the *next* rack's server, so every request crosses the mesh and
// every rack both originates and serves traffic.
//
// Unlike the other cloud_* scenarios this one always runs windowed
// (--shards 0 means one shard), with rack r pinned to shard r % N: it is
// the workload the engine's conservative time-window parallelism is built
// for, and the BENCH_engine.json speedup numbers come from sweeping
// --shards over it.  Per the determinism contract the stdout summary is
// byte-identical for every shard count; the events/sec line — the only
// host-timing-dependent output — goes to stderr.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/cloud_common.hpp"
#include "fabric/topology.hpp"
#include "rnic/device_profile.hpp"
#include "scenario/scenario.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "verbs/context.hpp"

using namespace ragnar;

namespace {

using cloud::Conn;
using cloud::connect;
using cloud::post_one;

constexpr std::uint32_t kReadBytes = 2u << 10;
constexpr std::uint32_t kDepth = 4;  // in-flight READs per tenant

struct ScaleResult {
  // Deterministic (stdout) half.
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t min_tenant_ops = 0;
  std::uint64_t max_tenant_ops = 0;
  // Host-timing (stderr) half.
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  unsigned workers = 1;
  double wall_ms = 0;
};

ScaleResult run_scale(std::uint64_t seed, std::size_t tenants,
                      std::size_t racks, std::size_t shards,
                      sim::SimDur measure) {
  sim::Engine::Options eopts;
  // Always windowed: 1 shard is the determinism baseline, N shards the
  // parallel configuration with identical output.
  eopts.shards = shards == 0 ? 1 : static_cast<std::uint32_t>(shards);
  sim::Engine eng(eopts);
  const auto shard_of = [&](std::size_t rack) {
    return static_cast<sim::ShardId>(rack % eng.shard_count());
  };

  sim::Xoshiro256 rng(seed);
  const rnic::DeviceProfile prof = rnic::make_profile(rnic::DeviceModel::kCX5);
  fabric::Topology::Builder b(eng);
  std::vector<rnic::NodeId> client(racks), server(racks);
  std::vector<fabric::SwitchId> tor(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    client[r] = b.add_host(prof, rng.fork(), shard_of(r));
    server[r] = b.add_host(prof, rng.fork(), shard_of(r));
    fabric::SwitchSpec spec;
    spec.buffer_bytes = 4u << 20;
    spec.pfc_xoff_bytes = 0;  // deep pool, PFC off: pure scale workload
    spec.name = "tor" + std::to_string(r);
    tor[r] = b.add_switch(spec, shard_of(r));
  }
  const auto access = fabric::LinkSpec::symmetric(sim::ns(500), 100.0);
  const auto mesh = fabric::LinkSpec::symmetric(sim::us(1), 100.0);
  for (std::size_t r = 0; r < racks; ++r) {
    b.link(fabric::NodeRef::host(client[r]), fabric::NodeRef::sw(tor[r]),
           access);
    b.link(fabric::NodeRef::host(server[r]), fabric::NodeRef::sw(tor[r]),
           access);
    for (std::size_t q = 0; q < r; ++q) {
      b.link(fabric::NodeRef::sw(tor[q]), fabric::NodeRef::sw(tor[r]), mesh);
    }
  }
  std::unique_ptr<fabric::Topology> topo = b.build();

  std::vector<std::unique_ptr<verbs::Context>> cctx(racks), sctx(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    cctx[r] = std::make_unique<verbs::Context>(
        *topo, topo->host(client[r]), "c" + std::to_string(r));
    sctx[r] = std::make_unique<verbs::Context>(
        *topo, topo->host(server[r]), "s" + std::to_string(r));
  }

  verbs::QpConfig qp;
  qp.max_send_wr = 2 * kDepth;
  std::vector<Conn> conn;
  conn.reserve(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    const std::size_t r = i % racks;
    conn.push_back(
        connect(*cctx[r], *sctx[(r + 1) % racks], 1, qp, 64u << 10));
  }

  const sim::SimTime t0 = sim::us(20);  // warmup: pipelines fill
  const sim::SimTime t_end = t0 + measure;

  // Per-tenant accounting: each slot is written by exactly one actor (on
  // its rack's shard), so plain uint64/uint8 slots are race-free; vectors
  // of bool would share bytes between shards.
  std::vector<std::uint64_t> ops(tenants, 0), bytes(tenants, 0);
  std::vector<std::uint8_t> done(tenants, 0);

  auto tenant_actor = [&](std::size_t i) -> sim::Task {
    Conn& c = conn[i];
    for (std::uint32_t d = 0; d < kDepth; ++d)
      post_one(c, verbs::WrOpcode::kRdmaRead, kReadBytes);
    verbs::Wc wc;
    while (eng.local_now() < t_end) {
      co_await c.cq().wait(1);
      while (c.cq().poll_one(&wc)) {
        if (wc.status == rnic::WcStatus::kSuccess && wc.completed_at >= t0 &&
            wc.completed_at < t_end) {
          ops[i] += 1;
          bytes[i] += wc.byte_len;
        }
        if (eng.local_now() < t_end)
          post_one(c, verbs::WrOpcode::kRdmaRead, kReadBytes);
      }
    }
    done[i] = 1;
  };

  for (std::size_t i = 0; i < tenants; ++i) {
    eng.spawn(tenant_actor(i), shard_of(i % racks));
  }

  const auto w0 = std::chrono::steady_clock::now();
  eng.run_while([&] {
    return std::any_of(done.begin(), done.end(),
                       [](std::uint8_t d) { return d == 0; });
  });
  const auto w1 = std::chrono::steady_clock::now();

  ScaleResult res;
  res.min_tenant_ops = ~std::uint64_t{0};
  for (std::size_t i = 0; i < tenants; ++i) {
    res.ops += ops[i];
    res.bytes += bytes[i];
    res.min_tenant_ops = std::min(res.min_tenant_ops, ops[i]);
    res.max_tenant_ops = std::max(res.max_tenant_ops, ops[i]);
  }
  res.events = eng.events_processed();
  res.windows = eng.windows_run();
  res.workers = eng.workers();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(w1 - w0).count();
  return res;
}

}  // namespace

RAGNAR_SCENARIO(cloud_scale, "cloud",
                "multi-rack tenant scale-out on the sharded engine; "
                "closed-loop cross-rack READs",
                "128 tenants x 8 racks, 200 us measure",
                "--full 128/256/512/1024 tenants x 8 racks, 300 us measure") {
  ctx.header(
      "cloud scale-out on the sharded simulation engine",
      "R racks behind a full ToR mesh, tenants stream 2 KiB READs to the "
      "next rack's server; rack r runs on shard r % N — summary output is "
      "identical for every --shards value");

  const std::size_t racks = 8;
  const sim::SimDur measure = ctx.full ? sim::us(300) : sim::us(200);
  std::vector<std::size_t> sweep;
  if (ctx.full) {
    sweep = {128, 256, 512, 1024};
  } else {
    sweep = {128};
  }

  std::printf("racks=%zu measure_us=%.0f read_bytes=%u depth=%u\n", racks,
              sim::to_us(measure), kReadBytes, kDepth);
  std::printf("%8s %12s %14s %12s %12s %12s\n", "tenants", "total_ops",
              "goodput_gbps", "ops_mean", "ops_min", "ops_max");
  for (const std::size_t tenants : sweep) {
    const ScaleResult r =
        run_scale(ctx.seed, tenants, racks, ctx.shards, measure);
    const double gbps = static_cast<double>(r.bytes) * 8.0 / 1e9 /
                        sim::to_sec(measure);
    std::printf("%8zu %12llu %14.3f %12.1f %12llu %12llu\n", tenants,
                static_cast<unsigned long long>(r.ops), gbps,
                static_cast<double>(r.ops) / static_cast<double>(tenants),
                static_cast<unsigned long long>(r.min_tenant_ops),
                static_cast<unsigned long long>(r.max_tenant_ops));
    std::fprintf(stderr,
                 "[cloud_scale] tenants=%zu workers=%u windows=%llu "
                 "events=%llu wall_ms=%.1f events_per_sec=%.0f\n",
                 tenants, r.workers,
                 static_cast<unsigned long long>(r.windows),
                 static_cast<unsigned long long>(r.events), r.wall_ms,
                 r.wall_ms > 0
                     ? static_cast<double>(r.events) / (r.wall_ms / 1e3)
                     : 0.0);
  }
  return 0;
}
