#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "rnic/device_profile.hpp"

// Shared plumbing for the experiment-reproduction binaries in bench/.
// Every binary accepts:
//   --seed N    experiment seed (default 2024)
//   --full      paper-scale parameters (default: reduced but shape-complete)
//   --csv DIR   also dump raw series as CSV files into DIR
//   --jobs N    worker threads for sweep execution (default: hardware
//               concurrency; results are bit-identical for any N)
//   --json F    dump the harness trial report as JSON to file F
namespace ragnar::bench {

// Strict unsigned-decimal parse for flag values.  Rejects empty strings,
// signs, non-digit characters, and overflow — "--jobs=-2" or "--trials=abc"
// must fail loudly, not silently become 0 or huge.
inline bool parse_u64_strict(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  std::uint64_t v = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

struct Args {
  std::uint64_t seed = 2024;
  bool full = false;
  std::string csv_dir;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string json_path;

  static Args parse(int argc, char** argv) {
    Args a;
    auto die = [&](const std::string& why) {
      std::fprintf(stderr, "%s: error: %s\n", argv[0], why.c_str());
      std::fprintf(
          stderr,
          "usage: %s [--seed N] [--full] [--csv DIR] [--jobs N] [--json F]\n",
          argv[0]);
      std::exit(2);
    };
    // Accepts both "--flag value" and "--flag=value" spellings; numeric
    // values go through parse_u64_strict.
    auto value_of = [&](int* i, const char* flag) -> const char* {
      const char* arg = argv[*i];
      const std::size_t flag_len = std::strlen(flag);
      if (arg[flag_len] == '=') return arg + flag_len + 1;
      if (*i + 1 >= argc) die(std::string(flag) + " requires a value");
      return argv[++*i];
    };
    auto matches = [](const char* arg, const char* flag) {
      const std::size_t n = std::strlen(flag);
      return std::strncmp(arg, flag, n) == 0 &&
             (arg[n] == '\0' || arg[n] == '=');
    };
    auto numeric = [&](int* i, const char* flag) {
      const char* text = value_of(i, flag);
      std::uint64_t v = 0;
      if (!parse_u64_strict(text, &v)) {
        die(std::string(flag) + " expects a non-negative integer, got '" +
            text + "'");
      }
      return v;
    };
    for (int i = 1; i < argc; ++i) {
      if (matches(argv[i], "--seed")) {
        a.seed = numeric(&i, "--seed");
      } else if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
      } else if (matches(argv[i], "--csv")) {
        a.csv_dir = value_of(&i, "--csv");
      } else if (matches(argv[i], "--jobs")) {
        a.jobs = static_cast<std::size_t>(numeric(&i, "--jobs"));
      } else if (matches(argv[i], "--json")) {
        a.json_path = value_of(&i, "--json");
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--seed N] [--full] [--csv DIR] [--jobs N] [--json F]\n",
            argv[0]);
        std::exit(0);
      } else {
        die(std::string("unknown argument '") + argv[i] + "'");
      }
    }
    return a;
  }

  harness::SweepRunner::Options sweep_options() const {
    harness::SweepRunner::Options o;
    o.jobs = jobs;
    o.base_seed = seed;
    return o;
  }
};

inline const rnic::DeviceModel kAllDevices[] = {rnic::DeviceModel::kCX4,
                                                rnic::DeviceModel::kCX5,
                                                rnic::DeviceModel::kCX6};

inline void header(const char* experiment, const char* paper_ref,
                   const Args& args) {
  std::printf("================================================================\n");
  std::printf("RAGNAR reproduction | %s\n", experiment);
  std::printf("paper reference     | %s\n", paper_ref);
  std::printf("seed=%llu  mode=%s\n",
              static_cast<unsigned long long>(args.seed),
              args.full ? "full" : "reduced");
  std::printf("================================================================\n");
}

// Run a populated sweep with the binary's --jobs/--seed, emit the standard
// timing footer (to stderr, so summary output stays byte-comparable across
// --jobs values) plus the optional --csv/--json dumps, and hand back the
// in-order results.
inline harness::SweepReport run_sweep(harness::SweepRunner& sweep,
                                      const Args& args, const char* name) {
  const auto report = sweep.run(args.sweep_options());
  std::fprintf(stderr,
               "[harness] %s: %zu trials on %zu jobs, wall %.0f ms "
               "(serial-equivalent %.0f ms, speedup %.2fx)\n",
               name, report.trials.size(), report.jobs, report.total_wall_ms,
               report.serial_wall_ms(),
               report.total_wall_ms > 0
                   ? report.serial_wall_ms() / report.total_wall_ms
                   : 0.0);
  if (!args.csv_dir.empty()) {
    const std::string path = report.write_csv(args.csv_dir, name);
    if (!path.empty()) {
      std::fprintf(stderr, "[harness] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[harness] WARNING: could not write CSV under %s\n",
                   args.csv_dir.c_str());
    }
  }
  if (!args.json_path.empty()) report.write_json(args.json_path);
  return report;
}

}  // namespace ragnar::bench
