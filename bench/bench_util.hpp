#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rnic/device_profile.hpp"

// Shared plumbing for the experiment-reproduction binaries in bench/.
// Every binary accepts:
//   --seed N    experiment seed (default 2024)
//   --full      paper-scale parameters (default: reduced but shape-complete)
//   --csv DIR   also dump raw series as CSV files into DIR
namespace ragnar::bench {

struct Args {
  std::uint64_t seed = 2024;
  bool full = false;
  std::string csv_dir;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
      } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        a.csv_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--seed N] [--full] [--csv DIR]\n", argv[0]);
        std::exit(0);
      }
    }
    return a;
  }
};

inline const rnic::DeviceModel kAllDevices[] = {rnic::DeviceModel::kCX4,
                                                rnic::DeviceModel::kCX5,
                                                rnic::DeviceModel::kCX6};

inline void header(const char* experiment, const char* paper_ref,
                   const Args& args) {
  std::printf("================================================================\n");
  std::printf("RAGNAR reproduction | %s\n", experiment);
  std::printf("paper reference     | %s\n", paper_ref);
  std::printf("seed=%llu  mode=%s\n",
              static_cast<unsigned long long>(args.seed),
              args.full ? "full" : "reduced");
  std::printf("================================================================\n");
}

}  // namespace ragnar::bench
