#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "harness/harness.hpp"
#include "obs/obs.hpp"
#include "rnic/device_profile.hpp"

// Shared plumbing for the experiment-reproduction binaries in bench/.
// Every binary accepts one flag set, parsed into one BenchOptions struct:
//   --seed N    experiment seed (default 2024)
//   --full      paper-scale parameters (default: reduced but shape-complete)
//   --csv DIR   also dump raw series as CSV files into DIR
//   --jobs N    worker threads for sweep execution (default: hardware
//               concurrency; results are bit-identical for any N)
//   --json F    dump the harness trial report as JSON to file F
//   --trace F   arm the observability subsystem and write a Chrome
//               trace_event JSON (chrome://tracing / ui.perfetto.dev) to F.
//               Without it no obs::Hub exists anywhere, so stdout/CSV output
//               is byte-identical to a build without the obs subsystem.
namespace ragnar::bench {

// Strict unsigned-decimal parse for flag values.  Rejects empty strings,
// signs, non-digit characters, and overflow — "--jobs=-2" or "--trials=abc"
// must fail loudly, not silently become 0 or huge.
inline bool parse_u64_strict(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  std::uint64_t v = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

namespace detail {

// Process-wide trace state for --trace: a hub installed on the main thread
// (pid 0 in the merged trace) plus the per-trial events drained from every
// run_sweep() call (pid = running trial number).  Written once at exit.
struct ProcessTrace {
  obs::Hub* hub = nullptr;
  std::string path;
  std::vector<obs::TraceEvent> sweep_events;
  std::uint64_t sweep_dropped = 0;
  std::uint32_t next_pid = 1;  // pid assignment across successive sweeps
};

inline ProcessTrace& process_trace() {
  static ProcessTrace t;
  return t;
}

inline void write_process_trace() {
  ProcessTrace& pt = process_trace();
  std::vector<obs::TraceEvent> all;
  std::uint64_t dropped = pt.sweep_dropped;
  if (pt.hub != nullptr && pt.hub->tracer() != nullptr) {
    dropped += pt.hub->tracer()->dropped();
    all = pt.hub->tracer()->take();  // main-thread events keep pid 0
  }
  all.insert(all.end(), pt.sweep_events.begin(), pt.sweep_events.end());
  if (obs::write_chrome_trace(pt.path, all, dropped)) {
    std::fprintf(stderr, "[obs] wrote Chrome trace %s (%zu events, %llu dropped)\n",
                 pt.path.c_str(), all.size(),
                 static_cast<unsigned long long>(dropped));
  } else {
    std::fprintf(stderr, "[obs] WARNING: could not write Chrome trace %s\n",
                 pt.path.c_str());
  }
}

// Install the process-wide hub (main thread) and register the exit-time
// trace writer.  Idempotent; called by BenchOptions::parse for --trace.
inline void arm_process_trace(const std::string& path) {
  ProcessTrace& pt = process_trace();
  if (pt.hub != nullptr) return;
  pt.path = path;
  obs::Hub::Config cfg;
  cfg.tracing = true;
  cfg.trace_capacity = 1 << 16;
  pt.hub = new obs::Hub(cfg);
  obs::install(pt.hub);
  std::atexit([] { write_process_trace(); });
}

}  // namespace detail

struct BenchOptions {
  std::uint64_t seed = 2024;
  bool full = false;
  std::string csv_dir;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string json_path;
  std::string trace_path;  // non-empty = observability armed

  static constexpr const char* kUsage =
      "usage: %s [--seed N] [--full] [--csv DIR] [--jobs N] [--json F] "
      "[--trace F]\n";

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions a;
    auto die = [&](const std::string& why) {
      std::fprintf(stderr, "%s: error: %s\n", argv[0], why.c_str());
      std::fprintf(stderr, kUsage, argv[0]);
      std::exit(2);
    };
    // Accepts both "--flag value" and "--flag=value" spellings; numeric
    // values go through parse_u64_strict.
    auto value_of = [&](int* i, const char* flag) -> const char* {
      const char* arg = argv[*i];
      const std::size_t flag_len = std::strlen(flag);
      if (arg[flag_len] == '=') return arg + flag_len + 1;
      if (*i + 1 >= argc) die(std::string(flag) + " requires a value");
      return argv[++*i];
    };
    auto matches = [](const char* arg, const char* flag) {
      const std::size_t n = std::strlen(flag);
      return std::strncmp(arg, flag, n) == 0 &&
             (arg[n] == '\0' || arg[n] == '=');
    };
    auto numeric = [&](int* i, const char* flag) {
      const char* text = value_of(i, flag);
      std::uint64_t v = 0;
      if (!parse_u64_strict(text, &v)) {
        die(std::string(flag) + " expects a non-negative integer, got '" +
            text + "'");
      }
      return v;
    };
    for (int i = 1; i < argc; ++i) {
      if (matches(argv[i], "--seed")) {
        a.seed = numeric(&i, "--seed");
      } else if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
      } else if (matches(argv[i], "--csv")) {
        a.csv_dir = value_of(&i, "--csv");
      } else if (matches(argv[i], "--jobs")) {
        a.jobs = static_cast<std::size_t>(numeric(&i, "--jobs"));
      } else if (matches(argv[i], "--json")) {
        a.json_path = value_of(&i, "--json");
      } else if (matches(argv[i], "--trace")) {
        a.trace_path = value_of(&i, "--trace");
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(kUsage, argv[0]);
        std::exit(0);
      } else {
        die(std::string("unknown argument '") + argv[i] + "'");
      }
    }
    if (!a.trace_path.empty()) detail::arm_process_trace(a.trace_path);
    return a;
  }

  harness::SweepRunner::Options sweep_options() const {
    harness::SweepRunner::Options o;
    o.jobs = jobs;
    o.base_seed = seed;
    // --trace arms the full observability stack per trial; off by default
    // so the trial closures schedule the exact pre-obs event sequence.
    o.obs = !trace_path.empty();
    o.trace = o.obs;
    return o;
  }
};

// The PR 1 name; BenchOptions is the PR 3 spelling.  Kept for one PR.
using Args = BenchOptions;

inline const rnic::DeviceModel kAllDevices[] = {rnic::DeviceModel::kCX4,
                                                rnic::DeviceModel::kCX5,
                                                rnic::DeviceModel::kCX6};

inline void header(const char* experiment, const char* paper_ref,
                   const BenchOptions& args) {
  std::printf("================================================================\n");
  std::printf("RAGNAR reproduction | %s\n", experiment);
  std::printf("paper reference     | %s\n", paper_ref);
  std::printf("seed=%llu  mode=%s\n",
              static_cast<unsigned long long>(args.seed),
              args.full ? "full" : "reduced");
  std::printf("================================================================\n");
}

// Run a populated sweep with the binary's --jobs/--seed, emit the standard
// timing footer (to stderr, so summary output stays byte-comparable across
// --jobs values) plus the optional --csv/--json dumps, and hand back the
// in-order results.
inline harness::SweepReport run_sweep(harness::SweepRunner& sweep,
                                      const BenchOptions& args,
                                      const char* name) {
  const auto report = sweep.run(args.sweep_options());
  if (!args.trace_path.empty()) {
    // Fold this sweep's per-trial events into the process trace, one
    // Chrome-trace pid per trial, numbered across successive sweeps.
    detail::ProcessTrace& pt = detail::process_trace();
    for (const auto& t : report.trials) {
      pt.sweep_dropped += t.trace_dropped;
      for (obs::TraceEvent ev : t.trace) {
        ev.pid = pt.next_pid + static_cast<std::uint32_t>(t.index);
        pt.sweep_events.push_back(std::move(ev));
      }
    }
    pt.next_pid += static_cast<std::uint32_t>(report.trials.size());
  }
  std::fprintf(stderr,
               "[harness] %s: %zu trials on %zu jobs, wall %.0f ms "
               "(serial-equivalent %.0f ms, speedup %.2fx)\n",
               name, report.trials.size(), report.jobs, report.total_wall_ms,
               report.serial_wall_ms(),
               report.total_wall_ms > 0
                   ? report.serial_wall_ms() / report.total_wall_ms
                   : 0.0);
  if (!args.csv_dir.empty()) {
    const std::string path = report.write_csv(args.csv_dir, name);
    if (!path.empty()) {
      std::fprintf(stderr, "[harness] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[harness] WARNING: could not write CSV under %s\n",
                   args.csv_dir.c_str());
    }
  }
  if (!args.json_path.empty()) report.write_json(args.json_path);
  return report;
}

}  // namespace ragnar::bench
