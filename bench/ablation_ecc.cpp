// Extension ablation: error-corrected covert framing.  Table V reports raw
// error rates of 4-8%; the effective-bandwidth column prices that with the
// Shannon bound 1-H2(e).  A practical exfiltration tool gets close to that
// bound with cheap coding: Hamming(7,4) plus block interleaving (the
// channel's noise is bursty — a bystander burst corrupts consecutive bit
// windows, which interleaving converts into correctable single-bit
// errors).
#include <cstdio>

#include "scenario/scenario.hpp"
#include "covert/ecc.hpp"
#include "covert/uli_channel.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(ablation_ecc, "extension",
                "Hamming(7,4) + interleave framing vs the raw Grain-IV channel",
                "384 data bits, all devices",
                "1024 data bits, all devices") {
  ctx.header("ECC framing over the Grain-IV channel",
                "Hamming(7,4) + interleaving vs the raw channel");

  sim::Xoshiro256 rng(ctx.seed);
  const std::size_t ndata = ctx.full ? 1024 : 384;
  const auto data = covert::random_bits(ndata, rng);

  std::printf("\n%-12s %-10s %-12s %-12s %-12s %-12s\n", "device",
              "raw err", "raw eff", "ECC resid", "ECC goodput", "corrected");
  for (auto model : scenario::kAllDevices) {
    auto cfg = covert::UliChannelConfig::best_for(
        model, covert::UliChannelKind::kIntraMr, ctx.seed);

    // Raw channel reference.
    covert::UliCovertChannel raw_ch(cfg);
    const auto raw = raw_ch.transmit(data);

    // ECC-framed transmission over a fresh channel instance.
    covert::UliCovertChannel ecc_ch(cfg);
    const auto ecc = covert::transmit_with_ecc(
        [&](const std::vector<int>& bits) { return ecc_ch.transmit(bits); },
        data, /*interleave_depth=*/16);

    std::printf("%-12s %8.2f%% %9.1f K %9.2f%% %9.1f K %9zu\n",
                rnic::device_name(model), 100 * raw.error_rate(),
                raw.effective_bps() / 1e3, 100 * ecc.residual_error(),
                ecc.goodput_bps() / 1e3, ecc.codewords_corrected);
  }
  std::printf("\nreading: Hamming(7,4) corrects single errors per codeword, "
              "so it pays off where the raw error rate is a few percent "
              "(CX-5/6 here); at ~8%% raw (CX-4) double-hit codewords "
              "dominate and a stronger code would be needed.  Goodput stays "
              "near the paper's Shannon-style effective bandwidth while "
              "delivering *correctable* payloads instead of raw bits.\n");
  return 0;
}
