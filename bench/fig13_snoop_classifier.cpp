// Reproduces Fig 13: snooping the victim's access address on disaggregated
// memory.  (a) attacker ULI traces differ per victim candidate; (b) a
// learned 17-class classifier recovers the address (paper: ResNet18, 6720
// traces, 95.6%; here: from-scratch MLP on 257-dim traces — see DESIGN.md
// substitutions — plus a nearest-centroid baseline and the template-free
// argmin detector).
#include <cstdio>
#include <vector>

#include "analysis/mlp.hpp"
#include "scenario/scenario.hpp"
#include "side/snoop.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig13_snoop_classifier, "Fig 13",
                "address snoop on disaggregated memory: MLP/centroid/argmin",
                "120 training traces per class",
                "396 traces per class (paper-scale 6732)") {
  ctx.header("disaggregated-memory address snoop (Fig 13)",
                "17 candidates x 257-point ULI traces; classifier accuracy "
                "(paper: 95.6%)");

  side::SnoopConfig cfg;
  cfg.model = rnic::DeviceModel::kCX4;
  cfg.seed = ctx.seed;

  side::SnoopAttack attack(cfg);

  // (a) example traces for three candidates.
  std::printf("\n(a) example attacker traces (mean ULI vs observed offset)\n");
  for (std::size_t cand : {std::size_t{0}, std::size_t{8}, std::size_t{16}}) {
    const auto trace = attack.capture_trace(cand);
    char title[96];
    std::snprintf(title, sizeof title,
                  "victim @ offset %zu B (candidate %zu)", cand * 64, cand);
    std::printf("%s", sim::ascii_plot(trace, 96, 8, title).c_str());
  }

  // (b) dataset + classifiers.  Paper: 6720 training traces for a 17-class
  // ResNet18.  Every trace here is fully simulated (no augmentation): full
  // mode matches the paper's dataset size (17 x 396 = 6732 training
  // traces); reduced mode uses 120/class.  The test set is captured
  // separately.
  const std::size_t base = ctx.full ? 396 : 120;
  const std::size_t test_per_class = ctx.full ? 50 : 25;
  std::printf("\n(b) building training set: %zu classes x %zu simulated "
              "traces = %zu; test set: %zu fresh traces/class\n",
              cfg.candidates, base, cfg.candidates * base, test_per_class);
  analysis::Dataset train = attack.build_dataset(base, /*augment_factor=*/1);
  analysis::Dataset test =
      attack.build_dataset(test_per_class, /*augment_factor=*/1);

  // The argmin detector needs raw traces; grab its accuracy first.
  std::size_t argmin_ok = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    argmin_ok += side::SnoopAttack::argmin_candidate(cfg, test.x[i]) ==
                 static_cast<std::size_t>(test.y[i]);
  }

  for (auto& x : train.x) analysis::normalize_zscore(x);
  for (auto& x : test.x) analysis::normalize_zscore(x);

  analysis::NearestCentroid nc;
  nc.fit(train);
  analysis::ConfusionMatrix nc_cm(cfg.candidates);
  const double nc_acc = nc.evaluate(test, &nc_cm);

  analysis::Mlp::Config mcfg;
  mcfg.layers = {static_cast<int>(cfg.observation_points), 64,
                 static_cast<int>(cfg.candidates)};
  mcfg.epochs = 30;
  mcfg.weight_decay = 0.002;
  mcfg.seed = ctx.seed + 6;
  analysis::Mlp mlp(mcfg);
  mlp.fit(train);
  analysis::ConfusionMatrix mlp_cm(cfg.candidates);
  const double mlp_acc = mlp.evaluate(test, &mlp_cm);

  std::printf("\nclassifier results on the held-out test set (%zu traces):\n",
              test.size());
  std::printf("  template-free argmin detector : %.1f%%\n",
              100.0 * argmin_ok / test.size());
  std::printf("  nearest-centroid baseline     : %.1f%%\n", 100 * nc_acc);
  std::printf("  MLP (257-64-17)               : %.1f%%   (paper ResNet18: "
              "95.6%%)\n",
              100 * mlp_acc);
  std::printf("\nMLP confusion matrix:\n%s", mlp_cm.to_string().c_str());
  return 0;
}
