// Reproduces the paper's headline comparison (sections I and V): Ragnar's
// volatile inter-MR channel vs Pythia's persistent (MTT-cache evict+reload)
// channel on the same CX-5 setup — the paper reports 63.6 Kbps vs 20 Kbps,
// a 3.2x advantage.
#include <cstdio>

#include "scenario/scenario.hpp"
#include "covert/pythia_channel.hpp"
#include "covert/uli_channel.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(claim_vs_pythia, "sec I+V",
                "Ragnar inter-MR vs Pythia persistent channel on CX-5 (3.2x claim)",
                "192-bit payload",
                "512-bit payload") {
  ctx.header("Ragnar vs Pythia covert bandwidth (CX-5)",
                "paper: 63.6 Kbps vs 20 Kbps => 3.2x");

  sim::Xoshiro256 rng(ctx.seed);
  const auto payload = covert::random_bits(ctx.full ? 512 : 192, rng);

  covert::PythiaConfig pc;
  pc.model = rnic::DeviceModel::kCX5;
  pc.seed = ctx.seed;
  covert::PythiaCovertChannel pythia(pc);
  const auto prun = pythia.transmit(payload);

  auto rc = covert::UliChannelConfig::best_for(
      rnic::DeviceModel::kCX5, covert::UliChannelKind::kInterMr, ctx.seed);
  covert::UliCovertChannel ragnar(rc);
  const auto rrun = ragnar.transmit(payload);

  std::printf("\n%-24s %10s %10s %12s\n", "channel", "raw Kbps", "error",
              "eff. Kbps");
  std::printf("%-24s %10.1f %9.2f%% %12.1f   (paper: 20 Kbps)\n",
              "Pythia (persistent)", prun.raw_bps() / 1e3,
              100 * prun.error_rate(), prun.effective_bps() / 1e3);
  std::printf("%-24s %10.1f %9.2f%% %12.1f   (paper: 63.6 Kbps)\n",
              "Ragnar inter-MR", rrun.raw_bps() / 1e3,
              100 * rrun.error_rate(), rrun.effective_bps() / 1e3);
  std::printf("\nadvantage: %.2fx raw (paper: 3.2x)\n",
              rrun.raw_bps() / prun.raw_bps());
  std::printf("\nwhy: Pythia pays a full MTT eviction sweep per bit; the "
              "volatile channel modulates live contention and needs no "
              "eviction, so its symbol time is a handful of ULI samples.\n");
  return 0;
}
