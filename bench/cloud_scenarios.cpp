// cloud_* scenario family: volatile channels that live in the *network*
// rather than on the NIC.  Both scenarios build a switched fabric::Topology
// (ToR model, shared egress buffer pool, PFC) that the point-to-point
// Fabric facade cannot express:
//
//   cloud_bankrupt        covert signalling through shared switch queueing
//                         between two tenants whose flows never share a NIC
//                         (Bankrupt, PAPERS.md) — the sender loads a ToR
//                         uplink, the receiver times small probe READs
//                         crossing the same uplink.
//
//   cloud_noisy_neighbor  one tenant's incast exhausting a ToR's shared
//                         buffer (pause + queueing collateral on an innocent
//                         victim), then per-tenant caps at the receiving
//                         NIC — enforced by RxAdmission's pacing machinery —
//                         partially restoring the victim.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/cloud_common.hpp"
#include "covert/common.hpp"
#include "fabric/topology.hpp"
#include "rnic/device_profile.hpp"
#include "scenario/scenario.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "verbs/context.hpp"

using namespace ragnar;

namespace {

using cloud::Conn;
using cloud::connect;
using cloud::post_one;

// ------------------------------------------------------------------------
// cloud_bankrupt
// ------------------------------------------------------------------------

// Two racks joined by one oversubscribable 25 Gb/s uplink.  Tenant A spans
// both racks (sender h0 in rack 0, its peer h2 in rack 1); so does tenant B
// (prober h1 in rack 0, peer h3 in rack 1).  A and B share *only* the
// uplink's egress queue on tor0 — no NIC, no host, no MR.
struct BankruptRig {
  sim::Engine eng;
  std::unique_ptr<fabric::Topology> topo;
  fabric::SwitchId tor0 = 0;
  std::vector<std::unique_ptr<verbs::Context>> ctx;
  Conn tx;     // tenant A: h0 -> h2, loads the uplink when signalling 1
  Conn probe;  // tenant B: h1 -> h3, times small READs across the uplink

  // Modulation state (PriorityCovertChannel's actor shape).
  std::vector<int> frame;
  sim::SimTime t0 = 0;
  sim::SimTime t_end = 0;
  sim::SimDur window = 0;
  std::vector<double> rtt_sum;
  std::vector<std::uint64_t> rtt_cnt;
  bool tx_done = false;
  bool rx_done = false;

  static constexpr std::uint32_t kBit1Bytes = 4u << 10;
  static constexpr std::uint32_t kBit0Bytes = 256;
  static constexpr std::uint32_t kProbeBytes = 256;
  static constexpr std::uint32_t kTxDepth = 8;

  // `shards` = 0 keeps the engine in legacy mode (the golden path); any
  // other value runs windowed with rack 0 on shard 0 and rack 1 on shard
  // 1 % shards — windowed output is identical for every shard count.
  explicit BankruptRig(std::uint64_t seed, std::size_t shards = 0)
      : eng(sim::Engine::Options{static_cast<std::uint32_t>(shards),
                                 sim::kMillisecond}) {
    const sim::ShardId rack1 =
        shards == 0 ? 0 : static_cast<sim::ShardId>(1 % shards);
    sim::Xoshiro256 rng(seed);
    const rnic::DeviceProfile prof =
        rnic::make_profile(rnic::DeviceModel::kCX5);
    fabric::Topology::Builder b(eng);
    const auto h0 = b.add_host(prof, rng.fork(), 0);
    const auto h1 = b.add_host(prof, rng.fork(), 0);
    const auto h2 = b.add_host(prof, rng.fork(), rack1);
    const auto h3 = b.add_host(prof, rng.fork(), rack1);
    fabric::SwitchSpec tor;
    // Deep pool, PFC off: the channel is pure shared-queue *latency* — the
    // backlog never comes close to filling the buffer, so nothing is
    // dropped and nobody is paused.
    tor.buffer_bytes = 4u << 20;
    tor.pfc_xoff_bytes = 0;
    tor.name = "tor0";
    tor0 = b.add_switch(tor, 0);
    fabric::SwitchSpec tor_b = tor;
    tor_b.name = "tor1";
    const auto tor1 = b.add_switch(tor_b, rack1);
    const auto access = fabric::LinkSpec::symmetric(sim::ns(250), 100.0);
    b.link(fabric::NodeRef::host(h0), fabric::NodeRef::sw(tor0), access)
        .link(fabric::NodeRef::host(h1), fabric::NodeRef::sw(tor0), access)
        .link(fabric::NodeRef::host(h2), fabric::NodeRef::sw(tor1), access)
        .link(fabric::NodeRef::host(h3), fabric::NodeRef::sw(tor1), access)
        .link(fabric::NodeRef::sw(tor0), fabric::NodeRef::sw(tor1),
              fabric::LinkSpec::symmetric(sim::ns(500), 25.0));
    topo = b.build();
    for (rnic::NodeId h : {h0, h1, h2, h3}) {
      ctx.push_back(std::make_unique<verbs::Context>(
          *topo, topo->host(h), "h" + std::to_string(h)));
    }
    verbs::QpConfig qp;
    qp.max_send_wr = 64;
    tx = connect(*ctx[0], *ctx[2], 1, qp);
    probe = connect(*ctx[1], *ctx[3], 1, qp);
  }

  int current_bit(sim::SimTime t) const {
    if (t < t0) return frame.empty() ? 0 : frame.front();
    const auto idx = static_cast<std::size_t>((t - t0) / window);
    return frame[std::min(idx, frame.size() - 1)];
  }

  // The executing shard's clock — both actors live on shard 0 (rack 0), so
  // this is their hosts' local time in either mode.
  sim::SimTime now() const { return eng.local_now(); }

  // Tenant A: saturated WRITE loop whose message size is the bit — large
  // writes back the uplink queue up, small ones leave it empty.
  sim::Task tx_actor() {
    while (post_one(tx, verbs::WrOpcode::kRdmaWrite,
                    current_bit(now()) ? kBit1Bytes : kBit0Bytes) &&
           tx.qp().outstanding() < kTxDepth) {
    }
    verbs::Wc wc;
    while (now() < t_end) {
      co_await tx.cq().wait(1);
      while (tx.cq().poll_one(&wc)) {
        if (now() < t_end) {
          post_one(tx, verbs::WrOpcode::kRdmaWrite,
                   current_bit(now()) ? kBit1Bytes : kBit0Bytes);
        }
      }
    }
    tx_done = true;
  }

  // Tenant B: one small READ at a time; each completion's RTT lands in the
  // bit window of its completion time.
  sim::Task rx_actor() {
    post_one(probe, verbs::WrOpcode::kRdmaRead, kProbeBytes);
    verbs::Wc wc;
    while (now() < t_end) {
      co_await probe.cq().wait(1);
      while (probe.cq().poll_one(&wc)) {
        // Bin by *post* time: a probe issued inside a 1-window carries that
        // window's queueing delay even when it completes after the edge, so
        // completion-time binning would smear each 1 into its successor.
        if (wc.status == rnic::WcStatus::kSuccess && wc.posted_at >= t0 &&
            wc.posted_at < t_end) {
          const auto w =
              static_cast<std::size_t>((wc.posted_at - t0) / window);
          if (w < rtt_sum.size()) {
            rtt_sum[w] += sim::to_us(wc.latency());
            rtt_cnt[w] += 1;
          }
        }
        if (now() < t_end) {
          post_one(probe, verbs::WrOpcode::kRdmaRead, kProbeBytes);
        }
      }
    }
    rx_done = true;
  }

  covert::ChannelRun transmit(const std::vector<int>& payload,
                              sim::SimDur bit_window,
                              std::size_t calibration_bits) {
    std::vector<int> calibration(calibration_bits);
    for (std::size_t i = 0; i < calibration.size(); ++i)
      calibration[i] = static_cast<int>(i & 1);
    frame = calibration;
    frame.insert(frame.end(), payload.begin(), payload.end());
    window = bit_window;
    rtt_sum.assign(frame.size(), 0.0);
    rtt_cnt.assign(frame.size(), 0);
    t0 = eng.now() + sim::us(50);
    t_end = t0 + window * frame.size();
    eng.spawn(tx_actor(), 0);  // h0's shard
    eng.spawn(rx_actor(), 0);  // h1's shard
    eng.run_while([&] { return !(tx_done && rx_done); });

    std::vector<double> means(frame.size(), 0.0);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      if (rtt_cnt[i] > 0)
        means[i] = rtt_sum[i] / static_cast<double>(rtt_cnt[i]);
    }
    covert::ChannelRun run;
    run.sent = payload;
    run.received = covert::ThresholdDecoder::decode(
        means, calibration, &run.threshold, &run.one_is_high,
        &run.cal_separation);
    run.elapsed = window * payload.size();
    run.rx_metric.assign(
        means.begin() + static_cast<std::ptrdiff_t>(calibration.size()),
        means.end());
    return run;
  }
};

// ------------------------------------------------------------------------
// cloud_noisy_neighbor
// ------------------------------------------------------------------------

struct PhaseResult {
  double victim_gbps = 0;
  double mean_rtt_us = 0;
  double p99_rtt_us = 0;
  std::uint64_t victim_ops = 0;
  fabric::SwitchStats sw;
};

// One rack: victim client (h0), two hog clients (h1, h2), one shared server
// (h3), all behind a single ToR.  The hogs' 2-into-1 incast toward the
// server backs the ToR's shared pool up past the PFC watermark, pausing
// every host on the rack — the victim included — and queueing the victim's
// requests behind megabytes of hog traffic.
PhaseResult run_phase(std::uint64_t seed, bool hog_on, double hog_cap_gbps,
                      sim::SimDur measure, std::size_t shards = 0) {
  sim::Engine eng(sim::Engine::Options{static_cast<std::uint32_t>(shards),
                                       sim::kMillisecond});
  // Host i -> shard i % N (round-robin; the ToR rides with the victim).
  // The placement only exists in windowed mode, where output is identical
  // for every shard count; shards = 0 is the legacy golden path.
  const auto place = [&](std::size_t i) {
    return shards == 0 ? sim::ShardId{0}
                       : static_cast<sim::ShardId>(i % shards);
  };
  sim::Xoshiro256 rng(seed);
  const rnic::DeviceProfile prof = rnic::make_profile(rnic::DeviceModel::kCX5);
  fabric::Topology::Builder b(eng);
  const auto victim_h = b.add_host(prof, rng.fork(), place(0));
  const auto hog1_h = b.add_host(prof, rng.fork(), place(1));
  const auto hog2_h = b.add_host(prof, rng.fork(), place(2));
  const auto server_h = b.add_host(prof, rng.fork(), place(3));
  fabric::SwitchSpec tor_spec;
  tor_spec.buffer_bytes = 512u << 10;
  tor_spec.pfc_xoff_bytes = 128u << 10;
  tor_spec.pfc_xon_bytes = 64u << 10;
  const auto tor = b.add_switch(tor_spec, place(0));
  const auto access = fabric::LinkSpec::symmetric(sim::ns(250), 100.0);
  for (rnic::NodeId h : {victim_h, hog1_h, hog2_h, server_h}) {
    b.link(fabric::NodeRef::host(h), fabric::NodeRef::sw(tor), access);
  }
  std::unique_ptr<fabric::Topology> topo = b.build();

  std::vector<std::unique_ptr<verbs::Context>> ctx;
  for (rnic::NodeId h : {victim_h, hog1_h, hog2_h, server_h}) {
    ctx.push_back(std::make_unique<verbs::Context>(
        *topo, topo->host(h), "h" + std::to_string(h)));
  }
  verbs::Context& server = *ctx[3];

  // Transport retry armed everywhere: pool overflow during the hogs'
  // initial burst tail-drops real messages, and RC retransmission — not a
  // stranded WQE — is what real fabrics answer with.
  verbs::QpConfig qp;
  qp.max_send_wr = 64;
  qp.timeout = sim::us(500);
  qp.retry_cnt = 7;

  Conn victim = connect(*ctx[0], server, 1, qp);
  Conn hog1 = connect(*ctx[1], server, 1, qp);
  Conn hog2 = connect(*ctx[2], server, 1, qp);

  if (hog_cap_gbps > 0) {
    rnic::RuntimeConfig cfg = server.device().runtime_config();
    cfg.tenant_caps_gbps[ctx[1]->device().node()] = hog_cap_gbps;
    cfg.tenant_caps_gbps[ctx[2]->device().node()] = hog_cap_gbps;
    server.device().configure(cfg);
  }

  constexpr std::uint32_t kVictimBytes = 4u << 10;
  constexpr std::uint32_t kVictimDepth = 4;
  constexpr std::uint32_t kHogBytes = 64u << 10;
  constexpr std::uint32_t kHogDepth = 16;

  const sim::SimTime t0 = sim::us(200);  // warmup: hogs reach steady state
  const sim::SimTime t_end = t0 + measure;

  PhaseResult res;
  sim::SampleSet rtt;
  std::uint64_t victim_bytes = 0;
  bool victim_done = false;
  // One completion flag per hog, each written by exactly one actor: the
  // hogs live on different shards in windowed mode, so a shared counter
  // would be a data race.  Flags start "done" when the hogs never run.
  bool hog_done[2] = {!hog_on, !hog_on};

  auto victim_actor = [&]() -> sim::Task {
    for (std::uint32_t i = 0; i < kVictimDepth; ++i)
      post_one(victim, verbs::WrOpcode::kRdmaRead, kVictimBytes);
    verbs::Wc wc;
    while (eng.local_now() < t_end) {
      co_await victim.cq().wait(1);
      while (victim.cq().poll_one(&wc)) {
        if (wc.status == rnic::WcStatus::kSuccess && wc.completed_at >= t0 &&
            wc.completed_at < t_end) {
          rtt.add(sim::to_us(wc.latency()));
          victim_bytes += wc.byte_len;
          ++res.victim_ops;
        }
        if (eng.local_now() < t_end)
          post_one(victim, verbs::WrOpcode::kRdmaRead, kVictimBytes);
      }
    }
    victim_done = true;
  };

  auto hog_actor = [&](Conn& conn, bool* done) -> sim::Task {
    for (std::uint32_t i = 0; i < kHogDepth; ++i)
      post_one(conn, verbs::WrOpcode::kRdmaWrite, kHogBytes);
    verbs::Wc wc;
    while (eng.local_now() < t_end) {
      co_await conn.cq().wait(1);
      while (conn.cq().poll_one(&wc)) {
        if (eng.local_now() < t_end)
          post_one(conn, verbs::WrOpcode::kRdmaWrite, kHogBytes);
      }
    }
    *done = true;
  };

  eng.spawn(victim_actor(), place(0));
  if (hog_on) {
    eng.spawn(hog_actor(hog1, &hog_done[0]), place(1));
    eng.spawn(hog_actor(hog2, &hog_done[1]), place(2));
  }
  eng.run_while(
      [&] { return !victim_done || !hog_done[0] || !hog_done[1]; });

  res.victim_gbps =
      static_cast<double>(victim_bytes) * 8.0 / 1e9 / sim::to_sec(measure);
  res.mean_rtt_us = rtt.mean();
  res.p99_rtt_us = rtt.empty() ? 0.0 : rtt.percentile(99.0);
  res.sw = topo->switch_stats(tor);
  return res;
}

}  // namespace

RAGNAR_SCENARIO(cloud_bankrupt, "cloud",
                "covert channel through shared ToR uplink queueing between "
                "tenants on disjoint NICs",
                "48 payload bits, 40 us windows",
                "--full 240 payload bits, 40 us windows") {
  ctx.header(
      "cloud covert channel via shared switch queueing (Bankrupt)",
      "two racks, one 25 Gb/s uplink; tenant A modulates the tor0 uplink "
      "backlog, tenant B times 256 B probe READs across it; the tenants "
      "share no NIC, host, or memory — only the switch queue");

  const std::size_t payload_bits = ctx.full ? 240 : 48;
  const std::size_t calibration_bits = 16;
  const sim::SimDur window = sim::us(40);

  sim::Xoshiro256 rng(ctx.seed);
  const std::vector<int> payload = covert::random_bits(payload_bits, rng);

  BankruptRig rig(ctx.seed, ctx.shards);
  const covert::ChannelRun run =
      rig.transmit(payload, window, calibration_bits);
  const fabric::SwitchStats& sw = rig.topo->switch_stats(rig.tor0);

  std::printf("payload_bits=%zu window_us=%.0f calibration_bits=%zu\n",
              payload_bits, sim::to_us(window), calibration_bits);
  std::printf(
      "cal_separation_us=%.3f threshold_us=%.3f polarity=%s\n",
      run.cal_separation, run.threshold, run.one_is_high ? "1-high" : "1-low");
  std::printf("error_rate=%.4f raw_bps=%.1f effective_bps=%.1f\n",
              run.error_rate(), run.raw_bps(), run.effective_bps());
  std::printf(
      "tor0: forwarded=%llu fwd_mb=%.2f peak_buffer_kb=%.1f drops=%llu "
      "pause_events=%llu\n",
      static_cast<unsigned long long>(sw.forwarded),
      static_cast<double>(sw.fwd_bytes) / 1e6,
      static_cast<double>(sw.peak_buffer_bytes) / 1024.0,
      static_cast<unsigned long long>(sw.drops),
      static_cast<unsigned long long>(sw.pause_events));
  std::printf("channel=%s\n",
              run.effective_bps() > 0 ? "NONZERO-CAPACITY" : "dead");
  return 0;
}

RAGNAR_SCENARIO(cloud_noisy_neighbor, "cloud",
                "hog tenant incast exhausts shared ToR buffer; victim "
                "degradation vs per-tenant caps",
                "3 phases x 2 ms measure",
                "--full 3 phases x 10 ms measure") {
  ctx.header(
      "cloud noisy neighbor: shared-buffer exhaustion + tenant-cap defense",
      "one rack, 2-into-1 hog incast toward a shared server; the ToR's "
      "shared pool crosses the PFC watermark and pauses the whole rack; "
      "per-tenant caps at the server NIC (RxAdmission pacing) throttle the "
      "hogs end-to-end through ACK backpressure");

  const sim::SimDur measure = ctx.full ? sim::ms(10) : sim::ms(2);
  const double cap_gbps = 8.0;

  struct Phase {
    const char* name;
    bool hog_on;
    double cap;
  };
  const Phase phases[] = {
      {"baseline", false, 0.0},
      {"contended", true, 0.0},
      {"defended", true, cap_gbps},
  };

  std::printf(
      "%-10s %12s %12s %11s %11s %9s %7s %8s\n", "phase", "victim_gbps",
      "victim_ops", "mean_rtt_us", "p99_rtt_us", "pause_ev", "drops",
      "peak_kb");
  PhaseResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = run_phase(ctx.seed, phases[i].hog_on, phases[i].cap, measure,
                           ctx.shards);
    const PhaseResult& r = results[i];
    std::printf(
        "%-10s %12.3f %12llu %11.2f %11.2f %9llu %7llu %8.1f\n",
        phases[i].name, r.victim_gbps,
        static_cast<unsigned long long>(r.victim_ops), r.mean_rtt_us,
        r.p99_rtt_us, static_cast<unsigned long long>(r.sw.pause_events),
        static_cast<unsigned long long>(r.sw.drops),
        static_cast<double>(r.sw.peak_buffer_bytes) / 1024.0);
  }

  const double degraded =
      results[0].victim_gbps > 0
          ? results[1].victim_gbps / results[0].victim_gbps
          : 0.0;
  const double restored =
      results[0].victim_gbps > 0
          ? results[2].victim_gbps / results[0].victim_gbps
          : 0.0;
  std::printf(
      "victim retained %.1f%% of baseline under contention; caps at "
      "%.0f Gb/s/tenant restore it to %.1f%%\n",
      100.0 * degraded, cap_gbps, 100.0 * restored);
  std::printf("defense=%s\n",
              restored > degraded ? "PARTIAL-RESTORE" : "ineffective");
  return 0;
}
