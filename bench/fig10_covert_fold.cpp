// Reproduces Fig 10: the receiver-side ULI levels of the inter-MR channel
// under a periodically switching covert bitstream (1024 B READs, large send
// queue, CX-4), folded over the two-bit period.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/uli_channel.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig10_covert_fold, "Fig 10",
                "folded ULI levels of the inter-MR channel under alternating bits",
                "32 alternating bits",
                "64 alternating bits") {
  ctx.header("folded ULI of the inter-MR channel (Fig 10)",
                "1024 B READ, max send queue 256, CX-4, alternating bits");

  covert::UliChannelConfig cfg = covert::UliChannelConfig::best_for(
      rnic::DeviceModel::kCX4, covert::UliChannelKind::kInterMr, ctx.seed);
  cfg.rx_read_size = 1024;
  cfg.tx_read_size = 1024;
  cfg.tx_queue_depth = 256;  // the figure's "Max Send Queue Length = 256"
  cfg.rx_queue_depth = 16;
  cfg.bit_period = sim::us(500);  // deep queues: symbol >> in-flight window
  cfg.ambient_intensity = 0;      // the figure shows the clean mechanism

  covert::UliCovertChannel ch(cfg);
  // Periodic switching bitstream, as in the figure.
  std::vector<int> payload;
  for (int i = 0; i < (ctx.full ? 64 : 32); ++i) payload.push_back(i % 2);
  const auto run = ch.transmit(payload);

  // Fold consecutive (0,1) windows.
  double level0 = 0, level1 = 0;
  int n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < run.rx_metric.size(); ++i) {
    if (payload[i]) {
      level1 += run.rx_metric[i];
      ++n1;
    } else {
      level0 += run.rx_metric[i];
      ++n0;
    }
  }
  level0 /= n0;
  level1 /= n1;

  std::printf("\nfolded ULI levels:  bit0 %.1f ns   bit1 %.1f ns   "
              "separation %.1f ns (%.1f%%)\n",
              level0, level1, level1 - level0,
              100.0 * (level1 - level0) / level0);
  std::printf("decode error over %zu alternating bits: %.2f%%\n",
              payload.size(), 100 * run.error_rate());
  std::printf("%s", sim::ascii_plot(run.rx_metric, 64, 10,
                                    "per-window mean ULI (alternating bits)")
                        .c_str());
  std::printf("\npaper shape: two clearly separated ULI levels, stable over "
              "the whole stream.\n");
  return 0;
}
