// google-benchmark microbenchmarks of the simulator core itself: event
// throughput, end-to-end verbs operation cost, and the hot translation-unit
// path.  These guard the harness's own performance (the Fig 13 dataset
// build issues millions of simulated READs).
#include <benchmark/benchmark.h>

#include <vector>

#include "scenario/scenario.hpp"

#include "fabric/topology.hpp"
#include "revng/testbed.hpp"
#include "rnic/translation.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "verbs/context.hpp"

using namespace ragnar;

static void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Xoshiro256 rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.push(rng(), [&sink] { ++sink; });
    while (!q.empty()) q.pop(nullptr)();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

static void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sched.after(sim::ns(10), tick);
    };
    sched.after(sim::ns(10), tick);
    sched.run_until_idle();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerEventThroughput);

static void BM_TranslationAccess(benchmark::State& state) {
  auto prof = rnic::make_profile(rnic::DeviceModel::kCX4);
  rnic::TranslationUnit xl(prof, sim::Xoshiro256(2));
  sim::Xoshiro256 rng(3);
  sim::SimTime t = 0;
  for (auto _ : state) {
    rnic::XlRequest r;
    r.mr_id = 1;
    r.offset = rng.uniform_u64(1u << 20);
    r.size = 64;
    r.is_read = true;
    t = xl.access(t, r);
  }
  benchmark::DoNotOptimize(t);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslationAccess);

static void BM_EndToEndRead(benchmark::State& state) {
  revng::Testbed bed(rnic::DeviceModel::kCX5, 4, 1);
  auto conn = bed.connect(0, 1, 16, 0);
  auto mr = conn.server_pd->register_mr(1u << 20);
  const auto size = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    verbs::SendWr wr;
    wr.opcode = verbs::WrOpcode::kRdmaRead;
    wr.local_addr = conn.local_addr();
    wr.length = size;
    wr.remote_addr = mr->addr();
    wr.rkey = mr->rkey();
    conn.qp().post_send(wr);
    conn.cq().run_until_available(1);
    verbs::Wc wc;
    conn.cq().poll_one(&wc);
    benchmark::DoNotOptimize(wc);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("simulated RDMA READ, host-side cost per op");
}
BENCHMARK(BM_EndToEndRead)->Arg(64)->Arg(4096);

// The switched-fabric counterpart of BM_EndToEndRead: same READ, but the
// two hosts sit behind a ToR switch, so every request and reply takes the
// multi-hop path (routing lookup, per-port egress serializer, shared-pool
// accounting) instead of the facade's direct-link delivery.  The pair
// quantifies the topology layer's host-side overhead per hop
// (BENCH_fabric.json).
static void BM_SwitchedRead(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Xoshiro256 rng(4);
  const auto prof = rnic::make_profile(rnic::DeviceModel::kCX5);
  fabric::Topology::Builder builder(sched);
  const auto h0 = builder.add_host(prof, rng.fork());
  const auto h1 = builder.add_host(prof, rng.fork());
  builder.add_switch({});
  builder
      .link(fabric::NodeRef::host(h0), fabric::NodeRef::sw(0),
            fabric::LinkSpec::symmetric(sim::ns(250)))
      .link(fabric::NodeRef::host(h1), fabric::NodeRef::sw(0),
            fabric::LinkSpec::symmetric(sim::ns(250)));
  auto topo = builder.build();
  verbs::Context client(*topo, topo->host(h0), "client");
  verbs::Context server(*topo, topo->host(h1), "server");
  auto client_pd = client.alloc_pd();
  auto server_pd = server.alloc_pd();
  auto client_cq = client.create_cq();
  auto server_cq = server.create_cq();
  auto client_qp = client_pd->create_qp(*client_cq);
  auto server_qp = server_pd->create_qp(*server_cq);
  client_qp->connect(*server_qp);
  auto client_mr = client_pd->register_mr(1u << 20);
  auto server_mr = server_pd->register_mr(1u << 20);
  const auto size = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    verbs::SendWr wr;
    wr.opcode = verbs::WrOpcode::kRdmaRead;
    wr.local_addr = client_mr->addr();
    wr.length = size;
    wr.remote_addr = server_mr->addr();
    wr.rkey = server_mr->rkey();
    client_qp->post_send(wr);
    client_cq->run_until_available(1);
    verbs::Wc wc;
    client_cq->poll_one(&wc);
    benchmark::DoNotOptimize(wc);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("simulated RDMA READ through one ToR switch");
}
BENCHMARK(BM_SwitchedRead)->Arg(64)->Arg(4096);

static void BM_PipelinedReads(benchmark::State& state) {
  revng::Testbed bed(rnic::DeviceModel::kCX5, 5, 1);
  auto conn = bed.connect(0, 1, 64, 0);
  auto mr = conn.server_pd->register_mr(1u << 20);
  for (auto _ : state) {
    verbs::SendWr wr;
    wr.opcode = verbs::WrOpcode::kRdmaRead;
    wr.local_addr = conn.local_addr();
    wr.length = 64;
    wr.remote_addr = mr->addr();
    wr.rkey = mr->rkey();
    for (int i = 0; i < 64; ++i) conn.qp().post_send(wr);
    conn.cq().run_until_available(64);
    verbs::Wc wc;
    while (conn.cq().poll_one(&wc)) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PipelinedReads);

// Timing output is inherently host-dependent, so this scenario is
// registered as non-deterministic: `ragnar run-all` still executes it, but
// the byte-identical-stdout contract does not apply.  Full mode matches the
// methodology used for before/after comparisons in perf-sensitive PRs
// (3 repetitions, aggregates only); quick mode is a single pass.
RAGNAR_SCENARIO_NONDET(sim_microbench, "perf",
                       "google-benchmark microbench of the simulator core",
                       "single pass per benchmark",
                       "3 repetitions, aggregates only") {
  std::vector<const char*> argv = {"sim_microbench"};
  if (ctx.full) {
    argv.push_back("--benchmark_repetitions=3");
    argv.push_back("--benchmark_report_aggregates_only=true");
  }
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, const_cast<char**>(argv.data()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
