// The one experiment binary: every reproduced figure/table/claim/ablation
// in bench/ registers itself with the scenario registry (scenario/
// scenario.hpp) and runs through this CLI.
//
//   ragnar list
//   ragnar run fig04_priority_matrix table5_covert_summary --jobs 8
//   ragnar run-all --full --csv-dir out/ --trace repro.trace.json
#include "scenario/cli.hpp"

int main(int argc, char** argv) {
  return ragnar::scenario::run_cli(argc, argv);
}
