// Reproduces Fig 12 + Algorithm 1: fingerprinting shuffle/join operators of
// an RDMA distributed database from the attacker's own monitored-flow
// bandwidth.  Shows the plateau (shuffle) and tooth (join) shapes and then
// runs the sliding-window CorrelationDetect over a mixed schedule.
#include <cstdio>
#include <vector>

#include "apps/shufflejoin.hpp"
#include "scenario/scenario.hpp"
#include "side/fingerprint.hpp"
#include "sim/trace.hpp"

using namespace ragnar;
using side::BandwidthMonitor;
using side::DbOp;
using side::FingerprintDetector;

namespace {

std::vector<double> record(rnic::DeviceModel model, std::uint64_t seed,
                           DbOp op, sim::SimDur span) {
  revng::Testbed bed(model, seed, 2);
  apps::ShuffleJoin::Config dcfg;
  dcfg.rows_per_round = 8192;
  apps::ShuffleJoin db(bed, dcfg);
  BandwidthMonitor::Config mcfg;
  BandwidthMonitor mon(bed, mcfg);
  mon.start(bed.sched().now() + span);
  if (op == DbOp::kShuffle) db.start_shuffle(4);
  if (op == DbOp::kJoin) db.start_join(4);
  if (op == DbOp::kScan) db.start_scan(4);
  bed.sched().run_while([&] { return !mon.done(); });
  return mon.series();
}

}  // namespace

RAGNAR_SCENARIO(fig12_fingerprint, "Fig 12",
                "DB shuffle/join fingerprinting + Algorithm 1 detector",
                "5 ms captures, 12 detection probes",
                "10 ms captures, 24 detection probes") {
  ctx.header("shuffle/join fingerprint (Fig 12, Algorithm 1)",
                "attacker-monitored bandwidth under DB operators, CX-4");
  const auto model = rnic::DeviceModel::kCX4;
  const sim::SimDur span = ctx.full ? sim::ms(10) : sim::ms(5);

  const auto shuffle_trace = record(model, ctx.seed, DbOp::kShuffle, span);
  const auto join_trace = record(model, ctx.seed + 1, DbOp::kJoin, span);
  const auto scan_trace = record(model, ctx.seed + 3, DbOp::kScan, span);
  const auto idle_trace = record(model, ctx.seed + 2, DbOp::kIdle, span);

  std::printf("\n%s", sim::ascii_plot(shuffle_trace, 96, 10,
                                      "monitored BW during SHUFFLE (plateau)")
                          .c_str());
  std::printf("\n%s", sim::ascii_plot(join_trace, 96, 10,
                                      "monitored BW during JOIN (teeth)")
                          .c_str());
  std::printf("\n%s", sim::ascii_plot(scan_trace, 96, 10,
                                      "monitored BW during TABLE SCAN")
                          .c_str());
  std::printf("\n%s",
              sim::ascii_plot(idle_trace, 96, 10, "monitored BW, idle DB")
                  .c_str());

  // Algorithm 1 end-to-end: templates from one profiling run, detection on
  // fresh captures with different seeds/round timings.
  FingerprintDetector det;
  det.add_template(DbOp::kShuffle, shuffle_trace);
  det.add_template(DbOp::kJoin, join_trace);
  det.add_template(DbOp::kScan, scan_trace);

  int correct = 0, total = 0;
  std::printf("\n%-10s %-10s %-12s\n", "truth", "detected", "correlation");
  for (int trial = 0; trial < (ctx.full ? 8 : 4); ++trial) {
    for (DbOp op : {DbOp::kShuffle, DbOp::kJoin, DbOp::kScan}) {
      const auto probe =
          record(model, ctx.seed + 100 + trial * 7 + static_cast<int>(op),
                 op, span);
      const auto d = det.classify(probe);
      std::printf("%-10s %-10s %-12.3f\n", side::db_op_name(op),
                  side::db_op_name(d.op), d.correlation);
      correct += (d.op == op);
      ++total;
    }
  }
  std::printf("\noperation identification: %d/%d (%.0f%%)\n", correct, total,
              100.0 * correct / total);
  std::printf("paper shape: plateau-like drop during shuffle, tooth-like "
              "during join; patterns remain identifiable across runs.\n");
  return 0;
}
