// defense_online: the streaming obs backbone feeding the online defense
// pipeline (docs/DEFENSE.md).  Three traffic families run under a per-trial
// StreamSink, each driven in chunks with defense::online::OnlinePipeline
// consuming between chunks:
//
//   attack    a Bankrupt-style covert sender (bench/cloud_scenarios.cpp)
//             duty-cycling WRITE bursts at the bit-window cadence through a
//             shared ToR uplink — the ULI-periodicity signature Grain-IV
//             keys on — while a co-tenant probe decodes the channel, giving
//             the covert capacity the defense is trading against.
//   benign    cloud_noisy_neighbor-style tenants: hogs and a victim in
//             steady closed loops through a shared ToR.  The pool is kept
//             deep (no PFC sawtooth): congestion-control oscillation is
//             itself periodic and would be flagged — a real limitation,
//             noted in docs/DEFENSE.md — so the false-alarm population here
//             is loud but steady.
//   enforced  the attack rig with per-tenant caps at the receiving NIC
//             (RxAdmission pacing): the residual covert capacity once the
//             detector's verdict is acted on.
//
// A threshold sweep over the Grain-IV score then emits ROC rows (detection
// rate vs false-alarm rate vs expected covert-capacity loss) through the
// harness CSV/JSON path, and a bounded-memory run feeds the pipeline until
// the sample target is hit, asserting footprint_bytes() stays under the
// configuration-derived max_footprint_bytes() the whole way.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/cloud_common.hpp"
#include "covert/common.hpp"
#include "defense/online/pipeline.hpp"
#include "fabric/topology.hpp"
#include "obs/obs.hpp"
#include "rnic/device_profile.hpp"
#include "scenario/scenario.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "verbs/context.hpp"

using namespace ragnar;

namespace {

using cloud::Conn;
using cloud::connect;
using cloud::post_one;
using defense::online::OnlineConfig;
using defense::online::OnlinePipeline;
using defense::online::TenantScore;

// Everything one traffic trial reports back to the threshold sweep.
struct TrafficOutcome {
  double suspect_score = 0;          // Grain-IV periodicity of the suspect
  std::vector<double> benign_scores; // periodicity of the benign tenants
  double probe_score = 0;            // covert *receiver* (attack rigs only)
  double capacity_bps = 0;           // decoded covert capacity (attack rigs)
  double suspect_p99_bytes = 0;
  bool grain2 = false;
  bool grain3 = false;
  std::uint64_t samples = 0;
  std::uint64_t sink_dropped = 0;
  std::size_t footprint = 0;
  std::size_t footprint_cap = 0;
  bool bounded = true;  // footprint <= cap held at every consume point
};

// Shared driving loop: advance the engine in `chunk`-sized slices of
// simulated time, consuming the ambient streaming sink into `pipe` at every
// boundary (the incremental-consumer shape docs/DEFENSE.md specifies), and
// check the pipeline's hard memory bound as we go.
template <typename DonePred>
void drive_chunked(sim::Engine& eng, OnlinePipeline& pipe, sim::SimDur chunk,
                   DonePred done, bool* bounded) {
  sim::SimTime upto = eng.now();
  while (!done()) {
    upto += chunk;
    eng.run_until(upto);
    if (obs::StreamSink* sink = obs::stream()) pipe.consume(*sink);
    if (pipe.footprint_bytes() > pipe.max_footprint_bytes()) *bounded = false;
  }
}

void finish_outcome(TrafficOutcome* out, const OnlinePipeline& pipe) {
  out->samples = pipe.samples_consumed();
  out->footprint = pipe.footprint_bytes();
  out->footprint_cap = pipe.max_footprint_bytes();
  if (out->footprint > out->footprint_cap) out->bounded = false;
  if (obs::StreamSink* sink = obs::stream()) {
    out->sink_dropped = sink->dropped_total();
  }
}

// ------------------------------------------------------------------------
// attack / enforced: duty-cycled Bankrupt sender + probe decoder
// ------------------------------------------------------------------------

// Same two-rack shape as cloud_bankrupt: tenant A (h0 -> h2) signals
// through the tor0 uplink queue, tenant B (h1 -> h3) times probe READs
// across it.  The sender here is *duty-cycled* rather than closed-loop: one
// burst at every bit-window edge, sized by the bit, then silence until the
// next edge.  That is the shape a real modulator needs (the bit clock is
// the channel), and the burst cadence is exactly the periodic line the
// Grain-IV detector scores.
struct AttackRig {
  sim::Engine eng;
  std::unique_ptr<fabric::Topology> topo;
  fabric::SwitchId tor0 = 0;
  std::vector<std::unique_ptr<verbs::Context>> ctx;
  rnic::NodeId sender_id = 0;
  rnic::NodeId prober_id = 0;
  Conn tx;
  Conn probe;

  std::vector<int> frame;
  sim::SimTime t0 = 0;
  sim::SimTime t_end = 0;
  sim::SimDur window = 0;
  std::vector<double> rtt_sum;
  std::vector<std::uint64_t> rtt_cnt;
  bool tx_done = false;
  bool rx_done = false;

  static constexpr std::uint32_t kBit1Bytes = 4u << 10;
  static constexpr std::uint32_t kBit0Bytes = 256;
  static constexpr std::uint32_t kProbeBytes = 256;
  static constexpr std::uint32_t kBurst = 8;

  AttackRig(std::uint64_t seed, std::size_t shards, double sender_cap_gbps)
      : eng(sim::Engine::Options{static_cast<std::uint32_t>(shards),
                                 sim::kMillisecond}) {
    const sim::ShardId rack1 =
        shards == 0 ? 0 : static_cast<sim::ShardId>(1 % shards);
    sim::Xoshiro256 rng(seed);
    const rnic::DeviceProfile prof =
        rnic::make_profile(rnic::DeviceModel::kCX5);
    fabric::Topology::Builder b(eng);
    const auto h0 = b.add_host(prof, rng.fork(), 0);
    const auto h1 = b.add_host(prof, rng.fork(), 0);
    const auto h2 = b.add_host(prof, rng.fork(), rack1);
    const auto h3 = b.add_host(prof, rng.fork(), rack1);
    sender_id = h0;
    prober_id = h1;
    fabric::SwitchSpec tor;
    tor.buffer_bytes = 4u << 20;  // deep pool, PFC off: pure queueing delay
    tor.pfc_xoff_bytes = 0;
    tor.name = "tor0";
    tor0 = b.add_switch(tor, 0);
    fabric::SwitchSpec tor_b = tor;
    tor_b.name = "tor1";
    const auto tor1 = b.add_switch(tor_b, rack1);
    const auto access = fabric::LinkSpec::symmetric(sim::ns(250), 100.0);
    b.link(fabric::NodeRef::host(h0), fabric::NodeRef::sw(tor0), access)
        .link(fabric::NodeRef::host(h1), fabric::NodeRef::sw(tor0), access)
        .link(fabric::NodeRef::host(h2), fabric::NodeRef::sw(tor1), access)
        .link(fabric::NodeRef::host(h3), fabric::NodeRef::sw(tor1), access)
        .link(fabric::NodeRef::sw(tor0), fabric::NodeRef::sw(tor1),
              fabric::LinkSpec::symmetric(sim::ns(500), 25.0));
    topo = b.build();
    for (rnic::NodeId h : {h0, h1, h2, h3}) {
      ctx.push_back(std::make_unique<verbs::Context>(
          *topo, topo->host(h), "h" + std::to_string(h)));
    }
    verbs::QpConfig qp;
    qp.max_send_wr = 64;
    tx = connect(*ctx[0], *ctx[2], 1, qp);
    probe = connect(*ctx[1], *ctx[3], 1, qp);
    if (sender_cap_gbps > 0) {
      // The enforcement arm: cap the flagged tenant at the receiving NIC
      // (RxAdmission pacing), the same lever cloud_noisy_neighbor's defense
      // phase uses.
      rnic::RuntimeConfig cfg = ctx[2]->device().runtime_config();
      cfg.tenant_caps_gbps[sender_id] = sender_cap_gbps;
      ctx[2]->device().configure(cfg);
    }
  }

  int bit_at(sim::SimTime t) const {
    const auto idx = static_cast<std::size_t>((t - t0) / window);
    return frame[std::min(idx, frame.size() - 1)];
  }

  // One burst per bit window, then sleep to the next edge.  The queueing
  // the burst leaves behind in tor0's uplink is what the probe reads.
  sim::Task tx_actor() {
    sim::Scheduler& sched = ctx[0]->scheduler();
    verbs::Wc wc;
    for (;;) {
      const sim::SimTime now = eng.local_now();
      if (now >= t_end) break;
      if (now >= t0) {
        const std::uint32_t bytes = bit_at(now) ? kBit1Bytes : kBit0Bytes;
        for (std::uint32_t i = 0; i < kBurst; ++i) {
          post_one(tx, verbs::WrOpcode::kRdmaWrite, bytes);
        }
      }
      while (tx.cq().poll_one(&wc)) {
      }
      const sim::SimTime next =
          now < t0 ? t0 : t0 + ((now - t0) / window + 1) * window;
      co_await sched.sleep(next - now);
    }
    tx_done = true;
  }

  sim::Task rx_actor() {
    post_one(probe, verbs::WrOpcode::kRdmaRead, kProbeBytes);
    verbs::Wc wc;
    while (eng.local_now() < t_end) {
      co_await probe.cq().wait(1);
      while (probe.cq().poll_one(&wc)) {
        // Bin by post time, as cloud_bankrupt does: a probe issued inside a
        // 1-window carries that window's delay even when it completes after
        // the edge.
        if (wc.status == rnic::WcStatus::kSuccess && wc.posted_at >= t0 &&
            wc.posted_at < t_end) {
          const auto w =
              static_cast<std::size_t>((wc.posted_at - t0) / window);
          if (w < rtt_sum.size()) {
            rtt_sum[w] += sim::to_us(wc.latency());
            rtt_cnt[w] += 1;
          }
        }
        if (eng.local_now() < t_end) {
          post_one(probe, verbs::WrOpcode::kRdmaRead, kProbeBytes);
        }
      }
    }
    rx_done = true;
  }
};

TrafficOutcome run_attack(std::uint64_t seed, std::size_t shards,
                          double sender_cap_gbps, std::size_t payload_bits,
                          sim::SimDur window, const OnlineConfig& det) {
  AttackRig rig(seed, shards, sender_cap_gbps);

  constexpr std::size_t kCalBits = 16;
  std::vector<int> calibration(kCalBits);
  for (std::size_t i = 0; i < kCalBits; ++i)
    calibration[i] = static_cast<int>(i & 1);
  sim::Xoshiro256 rng(seed);
  const std::vector<int> payload = covert::random_bits(payload_bits, rng);
  rig.frame = calibration;
  rig.frame.insert(rig.frame.end(), payload.begin(), payload.end());
  rig.window = window;
  rig.rtt_sum.assign(rig.frame.size(), 0.0);
  rig.rtt_cnt.assign(rig.frame.size(), 0);
  rig.t0 = rig.eng.now() + sim::us(50);
  rig.t_end = rig.t0 + window * rig.frame.size();

  TrafficOutcome out;
  OnlinePipeline pipe(det);
  rig.eng.spawn(rig.tx_actor(), 0);
  rig.eng.spawn(rig.rx_actor(), 0);
  drive_chunked(rig.eng, pipe, sim::us(400),
                [&] { return rig.tx_done && rig.rx_done; }, &out.bounded);

  std::vector<double> means(rig.frame.size(), 0.0);
  for (std::size_t i = 0; i < rig.frame.size(); ++i) {
    if (rig.rtt_cnt[i] > 0)
      means[i] = rig.rtt_sum[i] / static_cast<double>(rig.rtt_cnt[i]);
  }
  covert::ChannelRun run;
  run.sent = payload;
  run.received = covert::ThresholdDecoder::decode(
      means, calibration, &run.threshold, &run.one_is_high,
      &run.cal_separation);
  run.elapsed = window * payload.size();
  out.capacity_bps = run.effective_bps();

  const TenantScore sender = pipe.score(rig.sender_id);
  const TenantScore prober = pipe.score(rig.prober_id);
  out.suspect_score = sender.periodicity;
  out.probe_score = prober.periodicity;
  out.suspect_p99_bytes = sender.p99_msg_bytes;
  out.grain2 = sender.grain2;
  out.grain3 = sender.grain3;
  finish_outcome(&out, pipe);
  return out;
}

// ------------------------------------------------------------------------
// benign: the cloud_noisy_neighbor incast as the false-alarm population
// ------------------------------------------------------------------------

TrafficOutcome run_benign(std::uint64_t seed, std::size_t shards,
                          sim::SimDur measure, const OnlineConfig& det) {
  sim::Engine eng(sim::Engine::Options{static_cast<std::uint32_t>(shards),
                                       sim::kMillisecond});
  const auto place = [&](std::size_t i) {
    return shards == 0 ? sim::ShardId{0}
                       : static_cast<sim::ShardId>(i % shards);
  };
  sim::Xoshiro256 rng(seed);
  const rnic::DeviceProfile prof = rnic::make_profile(rnic::DeviceModel::kCX5);
  fabric::Topology::Builder b(eng);
  const auto victim_h = b.add_host(prof, rng.fork(), place(0));
  const auto hog1_h = b.add_host(prof, rng.fork(), place(1));
  const auto hog2_h = b.add_host(prof, rng.fork(), place(2));
  const auto server_h = b.add_host(prof, rng.fork(), place(3));
  fabric::SwitchSpec tor_spec;
  // Deep pool, PFC off: the incast queues but never oscillates.  A PFC
  // sawtooth is genuinely periodic and Grain-IV would (correctly, by its
  // own definition) flag it — separating congestion-control periodicity
  // from covert modulation is out of scope here (docs/DEFENSE.md).
  tor_spec.buffer_bytes = 4u << 20;
  tor_spec.pfc_xoff_bytes = 0;
  const auto tor = b.add_switch(tor_spec, place(0));
  const auto access = fabric::LinkSpec::symmetric(sim::ns(250), 100.0);
  for (rnic::NodeId h : {victim_h, hog1_h, hog2_h, server_h}) {
    b.link(fabric::NodeRef::host(h), fabric::NodeRef::sw(tor), access);
  }
  std::unique_ptr<fabric::Topology> topo = b.build();

  std::vector<std::unique_ptr<verbs::Context>> ctx;
  for (rnic::NodeId h : {victim_h, hog1_h, hog2_h, server_h}) {
    ctx.push_back(std::make_unique<verbs::Context>(
        *topo, topo->host(h), "h" + std::to_string(h)));
  }
  verbs::QpConfig qp;
  qp.max_send_wr = 64;
  qp.timeout = sim::us(500);
  qp.retry_cnt = 7;
  Conn victim = connect(*ctx[0], *ctx[3], 1, qp);
  Conn hog1 = connect(*ctx[1], *ctx[3], 1, qp);
  Conn hog2 = connect(*ctx[2], *ctx[3], 1, qp);

  constexpr std::uint32_t kVictimBytes = 4u << 10;
  constexpr std::uint32_t kVictimDepth = 4;
  constexpr std::uint32_t kHogBytes = 64u << 10;
  constexpr std::uint32_t kHogDepth = 16;

  const sim::SimTime t_end = sim::us(200) + measure;
  bool victim_done = false;
  bool hog_done[2] = {false, false};

  auto victim_actor = [&]() -> sim::Task {
    for (std::uint32_t i = 0; i < kVictimDepth; ++i)
      post_one(victim, verbs::WrOpcode::kRdmaRead, kVictimBytes);
    verbs::Wc wc;
    while (eng.local_now() < t_end) {
      co_await victim.cq().wait(1);
      while (victim.cq().poll_one(&wc)) {
        if (eng.local_now() < t_end)
          post_one(victim, verbs::WrOpcode::kRdmaRead, kVictimBytes);
      }
    }
    victim_done = true;
  };
  auto hog_actor = [&](Conn& conn, bool* done) -> sim::Task {
    for (std::uint32_t i = 0; i < kHogDepth; ++i)
      post_one(conn, verbs::WrOpcode::kRdmaWrite, kHogBytes);
    verbs::Wc wc;
    while (eng.local_now() < t_end) {
      co_await conn.cq().wait(1);
      while (conn.cq().poll_one(&wc)) {
        if (eng.local_now() < t_end)
          post_one(conn, verbs::WrOpcode::kRdmaWrite, kHogBytes);
      }
    }
    *done = true;
  };

  TrafficOutcome out;
  OnlinePipeline pipe(det);
  eng.spawn(victim_actor(), place(0));
  eng.spawn(hog_actor(hog1, &hog_done[0]), place(1));
  eng.spawn(hog_actor(hog2, &hog_done[1]), place(2));
  drive_chunked(
      eng, pipe, sim::us(400),
      [&] { return victim_done && hog_done[0] && hog_done[1]; },
      &out.bounded);

  double peak = 0;
  bool g2 = false;
  bool g3 = false;
  for (const TenantScore& s : pipe.scores()) {
    out.benign_scores.push_back(s.periodicity);
    peak = std::max(peak, s.periodicity);
    g2 = g2 || s.grain2;
    g3 = g3 || s.grain3;
  }
  out.suspect_score = peak;
  out.grain2 = g2;
  out.grain3 = g3;
  finish_outcome(&out, pipe);
  return out;
}

// ------------------------------------------------------------------------
// bounded-memory run: feed the pipeline past the sample target under a
// deliberately small sink ring, proving both ends of the memory story —
// the rings drop (and count) instead of growing, and the detector state
// stays under max_footprint_bytes() no matter how many messages pass.
// ------------------------------------------------------------------------

struct BoundedReport {
  std::uint64_t target = 0;
  std::uint64_t consumed = 0;
  std::uint64_t sink_published = 0;
  std::uint64_t sink_dropped = 0;
  std::uint64_t stream_overflow = 0;
  std::uint64_t resource_overflow = 0;
  std::uint64_t tenants_dropped = 0;
  std::size_t footprint = 0;
  std::size_t footprint_cap = 0;
  double sim_ms = 0;
  bool bounded = true;
};

BoundedReport run_bounded(std::uint64_t seed, std::uint64_t target_samples,
                          const OnlineConfig& det) {
  // Own hub with a small ring: the point is to overflow it and watch the
  // drop counters, independent of the harness trial's sink sizing.
  obs::Hub::Config hcfg;
  hcfg.streaming = true;
  hcfg.stream_capacity = 2048;
  obs::Hub hub(hcfg);
  obs::ScopedHub ambient(&hub);

  sim::Engine eng(sim::Engine::Options{0, sim::kMillisecond});
  sim::Xoshiro256 rng(seed);
  const rnic::DeviceProfile prof = rnic::make_profile(rnic::DeviceModel::kCX5);
  fabric::Topology::Builder b(eng);
  const auto s1 = b.add_host(prof, rng.fork(), 0);
  const auto s2 = b.add_host(prof, rng.fork(), 0);
  const auto s3 = b.add_host(prof, rng.fork(), 0);
  const auto server_h = b.add_host(prof, rng.fork(), 0);
  fabric::SwitchSpec tor_spec;
  tor_spec.buffer_bytes = 2u << 20;
  tor_spec.pfc_xoff_bytes = 0;
  const auto tor = b.add_switch(tor_spec, 0);
  const auto access = fabric::LinkSpec::symmetric(sim::ns(250), 100.0);
  for (rnic::NodeId h : {s1, s2, s3, server_h}) {
    b.link(fabric::NodeRef::host(h), fabric::NodeRef::sw(tor), access);
  }
  std::unique_ptr<fabric::Topology> topo = b.build();
  std::vector<std::unique_ptr<verbs::Context>> ctx;
  for (rnic::NodeId h : {s1, s2, s3, server_h}) {
    ctx.push_back(std::make_unique<verbs::Context>(
        *topo, topo->host(h), "h" + std::to_string(h)));
  }
  verbs::QpConfig qp;
  qp.max_send_wr = 64;
  Conn c1 = connect(*ctx[0], *ctx[3], 1, qp);
  Conn c2 = connect(*ctx[1], *ctx[3], 1, qp);
  Conn c3 = connect(*ctx[2], *ctx[3], 1, qp);

  constexpr std::uint32_t kBytes = 512;
  constexpr std::uint32_t kDepth = 32;
  bool stop = false;
  auto sender = [&](Conn& conn) -> sim::Task {
    for (std::uint32_t i = 0; i < kDepth; ++i)
      post_one(conn, verbs::WrOpcode::kRdmaWrite, kBytes);
    verbs::Wc wc;
    while (!stop) {
      co_await conn.cq().wait(1);
      while (conn.cq().poll_one(&wc)) {
        if (!stop) post_one(conn, verbs::WrOpcode::kRdmaWrite, kBytes);
      }
    }
  };
  eng.spawn(sender(c1), 0);
  eng.spawn(sender(c2), 0);
  eng.spawn(sender(c3), 0);

  BoundedReport rep;
  rep.target = target_samples;
  OnlinePipeline pipe(det);
  rep.footprint_cap = pipe.max_footprint_bytes();
  sim::SimTime upto = 0;
  // 1 ms chunks against a 2048-deep ring: each chunk publishes far more
  // admission samples than the ring holds, so overflow is exercised on
  // every consume, not just the last.
  while (pipe.samples_consumed() < target_samples) {
    upto += sim::ms(1);
    eng.run_until(upto);
    pipe.consume(*hub.stream());
    if (pipe.footprint_bytes() > rep.footprint_cap) rep.bounded = false;
  }
  stop = true;
  eng.run_until_idle();
  pipe.consume(*hub.stream());
  if (pipe.footprint_bytes() > rep.footprint_cap) rep.bounded = false;

  rep.consumed = pipe.samples_consumed();
  rep.sink_published = hub.stream()->published_total();
  rep.sink_dropped = hub.stream()->dropped_total();
  rep.stream_overflow = pipe.stream_overflow();
  rep.resource_overflow = pipe.resource_overflow();
  rep.tenants_dropped = pipe.tenants_dropped();
  rep.footprint = pipe.footprint_bytes();
  rep.sim_ms = sim::to_us(eng.now()) / 1000.0;
  return rep;
}

}  // namespace

RAGNAR_SCENARIO(defense_online, "defense",
                "online Grain-II/III/IV detectors on the streaming obs "
                "backbone: ROC vs covert capacity loss",
                "3 attack + 3 benign + 2 enforced trials, 9 thresholds, "
                "150k-sample bounded-memory run",
                "--full 5+5+3 trials, 240-bit frames, 1M-sample "
                "bounded-memory run") {
  ctx.header(
      "online defense: streaming detectors vs Bankrupt-style modulation",
      "HARMONIC-style Grain-II/III counters + Grain-IV ULI-periodicity as "
      "incremental stream consumers; ROC = detection vs false alarms on "
      "benign incast vs covert capacity surrendered");

  const std::size_t payload_bits = ctx.full ? 240 : 64;
  const sim::SimDur window = sim::us(80);
  const std::size_t n_attack = ctx.full ? 5 : 3;
  const std::size_t n_benign = ctx.full ? 5 : 3;
  const std::size_t n_enforced = ctx.full ? 3 : 2;
  // Enforcement cap: well under the bit-1 burst rate (32 KiB / 80 us
  // ~ 3.3 Gb/s), so ACK backpressure smears the sender's duty cycle and
  // degrades the channel rather than merely delaying it.
  const double cap_gbps = 0.5;
  OnlineConfig det;  // defaults: 20 us bins x 256 = 5.12 ms signal window

  // The benign incast must cover the detector's full signal window with
  // steady traffic, or the leading zero bins would read as a giant step
  // edge and poison the autocorrelation with a false "period".
  const sim::SimDur benign_measure =
      det.bin_width * static_cast<sim::SimDur>(det.bins) + sim::ms(1);

  // ---- traffic sweep: every trial under its own streaming sink ----------
  const std::size_t total = n_attack + n_benign + n_enforced;
  std::vector<TrafficOutcome> outcomes(total);
  harness::SweepRunner sweep;
  const std::size_t shards = ctx.shards;
  for (std::size_t i = 0; i < n_attack; ++i) {
    sweep.add("attack/" + std::to_string(i),
              [&outcomes, payload_bits, window, det, shards,
               slot = i](harness::TrialContext& tctx) {
                outcomes[slot] = run_attack(tctx.seed, shards, 0.0,
                                            payload_bits, window, det);
                harness::Record rec;
                rec.set("kind", std::string("attack"));
                rec.set("grain4_score", outcomes[slot].suspect_score, 4);
                rec.set("capacity_bps", outcomes[slot].capacity_bps, 1);
                rec.set("samples", outcomes[slot].samples);
                return rec;
              });
  }
  for (std::size_t i = 0; i < n_benign; ++i) {
    sweep.add("benign/" + std::to_string(i),
              [&outcomes, benign_measure, det, shards,
               slot = n_attack + i](harness::TrialContext& tctx) {
                outcomes[slot] =
                    run_benign(tctx.seed, shards, benign_measure, det);
                harness::Record rec;
                rec.set("kind", std::string("benign"));
                rec.set("grain4_score", outcomes[slot].suspect_score, 4);
                rec.set("capacity_bps", 0.0, 1);
                rec.set("samples", outcomes[slot].samples);
                return rec;
              });
  }
  for (std::size_t i = 0; i < n_enforced; ++i) {
    sweep.add("enforced/" + std::to_string(i),
              [&outcomes, payload_bits, window, det, shards, cap_gbps,
               slot = n_attack + n_benign + i](harness::TrialContext& tctx) {
                outcomes[slot] = run_attack(tctx.seed, shards, cap_gbps,
                                            payload_bits, window, det);
                harness::Record rec;
                rec.set("kind", std::string("enforced"));
                rec.set("grain4_score", outcomes[slot].suspect_score, 4);
                rec.set("capacity_bps", outcomes[slot].capacity_bps, 1);
                rec.set("samples", outcomes[slot].samples);
                return rec;
              });
  }
  harness::SweepRunner::Options sopts = ctx.sweep_options();
  sopts.obs = true;     // the streaming sink hangs off the trial hub
  sopts.stream = true;  // ... and its drop counters land in the CSV/JSON
  ctx.run_sweep(sweep, "defense_online_trials", sopts);

  // ---- per-trial summary ------------------------------------------------
  bool all_bounded = true;
  std::uint64_t total_dropped = 0;
  std::printf("%-12s %12s %12s %10s %12s %10s\n", "trial", "grain4", "g2/g3",
              "samples", "capacity_bps", "sink_drop");
  for (std::size_t i = 0; i < total; ++i) {
    const TrafficOutcome& o = outcomes[i];
    const char* kind = i < n_attack            ? "attack"
                       : i < n_attack + n_benign ? "benign"
                                                 : "enforced";
    char label[32];
    std::snprintf(label, sizeof label, "%s/%zu", kind,
                  i < n_attack            ? i
                  : i < n_attack + n_benign ? i - n_attack
                                            : i - n_attack - n_benign);
    std::printf("%-12s %12.4f %8s%s/%s %10llu %12.1f %10llu\n", label,
                o.suspect_score, "", o.grain2 ? "y" : "n",
                o.grain3 ? "y" : "n",
                static_cast<unsigned long long>(o.samples), o.capacity_bps,
                static_cast<unsigned long long>(o.sink_dropped));
    all_bounded = all_bounded && o.bounded;
    total_dropped += o.sink_dropped;
  }

  // ---- ROC: sweep the Grain-IV threshold --------------------------------
  std::vector<double> attack_scores;
  for (std::size_t i = 0; i < n_attack; ++i)
    attack_scores.push_back(outcomes[i].suspect_score);
  std::vector<double> benign_obs;
  for (std::size_t i = n_attack; i < n_attack + n_benign; ++i) {
    for (double s : outcomes[i].benign_scores) benign_obs.push_back(s);
  }
  double cap_free = 0;
  for (std::size_t i = 0; i < n_attack; ++i)
    cap_free += outcomes[i].capacity_bps;
  cap_free /= static_cast<double>(n_attack);
  double cap_enf = 0;
  for (std::size_t i = n_attack + n_benign; i < total; ++i)
    cap_enf += outcomes[i].capacity_bps;
  cap_enf /= static_cast<double>(n_enforced);
  const double enforcement_loss =
      cap_free > 0 ? std::max(0.0, 1.0 - cap_enf / cap_free) : 0.0;

  const std::vector<double> thresholds = {0.05, 0.15, 0.25, 0.35, 0.45,
                                          0.55, 0.65, 0.75, 0.85};
  struct RocPoint {
    double threshold = 0;
    double detection = 0;
    double false_alarm = 0;
    double capacity_loss = 0;
  };
  std::vector<RocPoint> roc(thresholds.size());
  harness::SweepRunner roc_sweep;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    roc_sweep.add(
        "thr=" + std::to_string(thresholds[i]).substr(0, 4),
        [&roc, &attack_scores, &benign_obs, &thresholds, enforcement_loss,
         cap_free, cap_enf, i](harness::TrialContext&) {
          const double th = thresholds[i];
          const auto frac_over = [th](const std::vector<double>& v) {
            if (v.empty()) return 0.0;
            std::size_t n = 0;
            for (double s : v) n += s > th ? 1 : 0;
            return static_cast<double>(n) / static_cast<double>(v.size());
          };
          RocPoint p;
          p.threshold = th;
          p.detection = frac_over(attack_scores);
          p.false_alarm = frac_over(benign_obs);
          // Expected covert capacity surrendered by the attacker at this
          // operating point: the enforcement haircut, weighted by how often
          // the detector actually catches the sender.
          p.capacity_loss = p.detection * enforcement_loss;
          roc[i] = p;
          harness::Record rec;
          rec.set("threshold", th, 2);
          rec.set("detection_rate", p.detection, 4);
          rec.set("false_alarm_rate", p.false_alarm, 4);
          rec.set("capacity_free_bps", cap_free, 1);
          rec.set("capacity_enforced_bps", cap_enf, 1);
          rec.set("capacity_loss", p.capacity_loss, 4);
          return rec;
        });
  }
  ctx.run_sweep(roc_sweep, "defense_online_roc");

  std::printf("capacity: free=%.1f bps enforced=%.1f bps haircut=%.1f%%\n",
              cap_free, cap_enf, 100.0 * enforcement_loss);
  for (const RocPoint& p : roc) {
    std::printf(
        "roc: threshold=%.2f detection=%.2f false_alarm=%.2f "
        "capacity_loss=%.2f\n",
        p.threshold, p.detection, p.false_alarm, p.capacity_loss);
  }
  // Best zero-false-alarm operating point: the separability contract CI
  // greps for.
  double best_det = 0;
  double best_th = 0;
  for (const RocPoint& p : roc) {
    if (p.false_alarm == 0 && p.detection > best_det) {
      best_det = p.detection;
      best_th = p.threshold;
    }
  }
  if (best_det > 0) {
    std::printf(
        "contract=SEPARABLE threshold=%.2f detection=%.2f false_alarm=0.00\n",
        best_th, best_det);
  } else {
    std::printf("contract=INSEPARABLE\n");
  }

  // ---- bounded-memory run ----------------------------------------------
  const std::uint64_t target = ctx.full ? 1'000'000 : 150'000;
  const BoundedReport rep = run_bounded(ctx.seed, target, det);
  std::printf(
      "bounded_memory: target=%llu consumed=%llu sim_ms=%.1f "
      "footprint_kb=%.1f cap_kb=%.1f sink_published=%llu sink_dropped=%llu "
      "stream_overflow=%llu resource_overflow=%llu tenants_dropped=%llu\n",
      static_cast<unsigned long long>(rep.target),
      static_cast<unsigned long long>(rep.consumed), rep.sim_ms,
      static_cast<double>(rep.footprint) / 1024.0,
      static_cast<double>(rep.footprint_cap) / 1024.0,
      static_cast<unsigned long long>(rep.sink_published),
      static_cast<unsigned long long>(rep.sink_dropped),
      static_cast<unsigned long long>(rep.stream_overflow),
      static_cast<unsigned long long>(rep.resource_overflow),
      static_cast<unsigned long long>(rep.tenants_dropped));
  std::printf("memory=%s trial_sinks_dropped=%llu\n",
              rep.bounded && all_bounded ? "BOUNDED" : "UNBOUNDED",
              static_cast<unsigned long long>(total_dropped));
  return rep.bounded && all_bounded && best_det > 0 ? 0 : 1;
}
