// Reproduces Fig 4: the traffic-priority / contention matrix.  For pairs of
// flows (opcode x message size x qp_num) we measure each flow solo and
// together (ETS 50/50, two client hosts, one server) and categorize the
// bandwidth change the way the paper's pie charts do:
//   INCR  (> +5%, "abnormal increase", blue)
//   none  (>= 85% kept, dark red)
//   slight(60-85% kept, light red)
//   MAJOR (< 60% kept, medium red)
// The bench then checks the paper's Key Findings 1-3 explicitly.
//
// Every cell is an independent three-simulation trial, so the grid runs on
// the harness thread pool (--jobs); the printed matrix is byte-identical
// for any job count.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/sweeps.hpp"

using namespace ragnar;
using revng::ContentionCell;
using revng::FlowSpec;
using verbs::WrOpcode;

namespace {

FlowSpec make_flow(WrOpcode op, std::uint32_t size, std::uint32_t qp) {
  FlowSpec s;
  s.opcode = op;
  s.msg_size = size;
  s.qp_num = qp;
  s.depth_per_qp = 16;
  s.duration = sim::us(400);
  return s;
}

const char* category(double ratio) {
  if (ratio > 1.05) return "INCR ";
  if (ratio >= 0.85) return "none ";
  if (ratio >= 0.60) return "slight";
  return "MAJOR";
}

std::string flow_name(const FlowSpec& f) {
  const char* op = f.opcode == WrOpcode::kRdmaRead
                       ? (f.reverse ? "revR" : "R")
                   : f.opcode == WrOpcode::kRdmaWrite ? "W"
                                                      : "A";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%u q%u", op, f.msg_size, f.qp_num);
  return buf;
}

}  // namespace

RAGNAR_SCENARIO(fig04_priority_matrix, "Fig 4",
                "pairwise traffic-priority contention matrix + Key Finding checks",
                "19 contention cells, 3 sims each",
                "6000+-combination grid (sizes x QPs x depths)") {
  ctx.header("traffic-priority contention matrix (Fig 4)",
                "pairwise flow contention, CX-4, ETS 50/50");

  // Reduced mode keeps a representative subset; --full sweeps the paper's
  // "over 6000 parameter combinations" regime by also varying queue depth
  // and adding read-vs-read cells.
  std::vector<std::uint32_t> wsizes{128, 512, 2048, 16384};
  std::vector<std::uint32_t> rsizes{64, 1024, 16384};
  std::vector<std::uint32_t> qps{2};
  std::vector<std::uint32_t> depths{16};
  if (ctx.full) {
    wsizes = {64, 128, 256, 512, 1024, 2048, 4096, 16384};
    rsizes = {64, 256, 512, 1024, 4096, 16384, 65536};
    qps = {1, 2, 4, 8};
    depths = {4, 16};
  }

  std::vector<std::pair<FlowSpec, FlowSpec>> pairs;
  for (auto d : depths) {
    for (auto q : qps) {
      for (auto ws : wsizes) {
        for (auto rs : rsizes) {
          auto a = make_flow(WrOpcode::kRdmaWrite, ws, q);
          auto b = make_flow(WrOpcode::kRdmaRead, rs, q);
          a.depth_per_qp = b.depth_per_qp = d;
          pairs.emplace_back(a, b);
        }
        // write vs write (Key Finding 2 cells)
        {
          auto a = make_flow(WrOpcode::kRdmaWrite, ws, q);
          auto b = a;
          a.depth_per_qp = b.depth_per_qp = d;
          pairs.emplace_back(a, b);
        }
        if (ctx.full) {
          // read vs read of mixed sizes (full-grid completeness)
          for (auto rs : rsizes) {
            auto ra = make_flow(WrOpcode::kRdmaRead, ws, q);
            auto rb = make_flow(WrOpcode::kRdmaRead, rs, q);
            ra.depth_per_qp = rb.depth_per_qp = d;
            pairs.emplace_back(ra, rb);
          }
        }
      }
      // atomics vs read/write (orange box)
      pairs.emplace_back(make_flow(WrOpcode::kFetchAdd, 8, q),
                         make_flow(WrOpcode::kRdmaRead, 1024, q));
      pairs.emplace_back(make_flow(WrOpcode::kFetchAdd, 8, q),
                         make_flow(WrOpcode::kRdmaWrite, 2048, q));
      // yellow box: write vs write and write vs reverse-read with identical
      // parameters (the reverse READ's payload crosses the wire in the same
      // direction as a WRITE, but takes the READ path through the NICs).
      {
        auto rev = make_flow(WrOpcode::kRdmaRead, 512, q);
        rev.reverse = true;
        pairs.emplace_back(make_flow(WrOpcode::kRdmaWrite, 512, q), rev);
      }
    }
  }
  std::printf("\nsweeping %zu contention cells (x3 runs each: solo A, solo "
              "B, duo)\n",
              pairs.size());

  // Dispatch one trial per cell.  The cell seed stays ctx.seed (the grid
  // position is the experiment parameter, not the seed), so the numbers
  // match the serial reproduction exactly.
  std::vector<ContentionCell> cells(pairs.size());
  harness::SweepRunner sweep;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& [a, b] = pairs[i];
    sweep.add(flow_name(a) + " vs " + flow_name(b),
              [&cells, i, &pairs, seed = ctx.seed](harness::TrialContext&) {
                const auto& [fa, fb] = pairs[i];
                const ContentionCell c = revng::run_contention_pair(
                    rnic::DeviceModel::kCX4, seed, fa, fb);
                cells[i] = c;
                harness::Record rec;
                rec.set("solo_a_gbps", c.solo_a_gbps, 4);
                rec.set("duo_a_gbps", c.duo_a_gbps, 4);
                rec.set("solo_b_gbps", c.solo_b_gbps, 4);
                rec.set("duo_b_gbps", c.duo_b_gbps, 4);
                return rec;
              });
  }
  ctx.run_sweep(sweep, "fig04_priority_matrix");

  std::printf("\n%-14s %-14s | %8s %8s %6s | %8s %8s %6s | %7s\n", "flow A",
              "flow B", "soloA", "duoA", "catA", "soloB", "duoB", "catB",
              "total%");

  // KF bookkeeping over the in-order results.
  bool kf2_seen = false;
  double ww_ratio_b = -1;      // W2048 vs W2048: how the second write fares
  double wrev_ratio_b = -1;    // W2048 vs reverse-R2048: how the reverse read fares
  double worst_small_write_keep = 1e9;
  double med_read_keep_under_small_w = 1e9;
  double small_read_keep_under_small_w = 0;
  double read_keep_under_bulk_w = 1e9;
  double bulk_write_keep = 0;

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& [a, b] = pairs[i];
    const ContentionCell& c = cells[i];
    std::printf("%-14s %-14s | %8.2f %8.2f %6s | %8.2f %8.2f %6s | %6.1f%%\n",
                flow_name(a).c_str(), flow_name(b).c_str(), c.solo_a_gbps,
                c.duo_a_gbps, category(c.ratio_a()), c.solo_b_gbps,
                c.duo_b_gbps, category(c.ratio_b()),
                100.0 * c.total_vs_solo());

    const bool a_small_w =
        a.opcode == WrOpcode::kRdmaWrite && a.msg_size < 512;
    const bool a_bulk_w =
        a.opcode == WrOpcode::kRdmaWrite && a.msg_size >= 2048;
    const bool b_read = b.opcode == WrOpcode::kRdmaRead;
    if (a_small_w && b.opcode == WrOpcode::kRdmaWrite &&
        c.total_vs_solo() > 2.0) {
      kf2_seen = true;
    }
    if (a_small_w && b_read) {
      worst_small_write_keep = std::min(worst_small_write_keep, c.ratio_a());
      if (b.msg_size == 1024)
        med_read_keep_under_small_w =
            std::min(med_read_keep_under_small_w, c.ratio_b());
      if (b.msg_size == 64)
        small_read_keep_under_small_w =
            std::max(small_read_keep_under_small_w, c.ratio_b());
    }
    if (a_bulk_w && b_read && b.msg_size <= 1024) {
      read_keep_under_bulk_w = std::min(read_keep_under_bulk_w, c.ratio_b());
      bulk_write_keep = std::max(bulk_write_keep, c.ratio_a());
    }
    if (a.opcode == WrOpcode::kRdmaWrite && a.msg_size == 512 &&
        b.msg_size == 512 && a.qp_num == 2) {
      if (b.opcode == WrOpcode::kRdmaWrite) ww_ratio_b = c.ratio_b();
      if (b.opcode == WrOpcode::kRdmaRead && b.reverse)
        wrev_ratio_b = c.ratio_b();
    }
  }

  std::printf("\n--- Key Finding checks -----------------------------------\n");
  std::printf("KF1a small-write flows lose >50%% vs reads:      %s "
              "(worst keep %.0f%%)\n",
              worst_small_write_keep < 0.5 ? "PASS" : "FAIL",
              100 * worst_small_write_keep);
  std::printf("KF1a medium reads drop under small writes:      %s "
              "(keep %.0f%%)\n",
              med_read_keep_under_small_w < 0.8 ? "PASS" : "FAIL",
              100 * med_read_keep_under_small_w);
  std::printf("KF1a small reads unaffected by small writes:    %s "
              "(keep %.0f%%)\n",
              small_read_keep_under_small_w > 0.9 ? "PASS" : "FAIL",
              100 * small_read_keep_under_small_w);
  std::printf("KF1b bulk writes win, reads drop 30-80%%:        %s "
              "(write keep %.0f%%, read keep %.0f%%)\n",
              (bulk_write_keep > 0.85 && read_keep_under_bulk_w < 0.7)
                  ? "PASS"
                  : "FAIL",
              100 * bulk_write_keep, 100 * read_keep_under_bulk_w);
  std::printf("KF2  small-write pair total > 200%% of solo:     %s\n",
              kf2_seen ? "PASS" : "FAIL");
  std::printf("KF3  Tx (responses) preempt Rx (writes): implied by KF1a "
              "write losses while the read flow keeps its responses.\n");
  if (ww_ratio_b >= 0 && wrev_ratio_b >= 0) {
    std::printf("obs4 write vs reverse-read dynamics differ:    %s "
                "(W-vs-W keeps %.0f%%, W-vs-revR keeps %.0f%%)\n",
                std::abs(ww_ratio_b - wrev_ratio_b) > 0.10 ? "PASS" : "FAIL",
                100 * ww_ratio_b, 100 * wrev_ratio_b);
  }
  return 0;
}
