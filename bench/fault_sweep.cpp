// Fault sweep: priority covert-channel goodput and residual error versus
// injected burst loss (Gilbert-Elliott chain on every fabric link), raw
// decoding vs fault-tolerant framing (per-segment resync preamble +
// interleaved Hamming(7,4) — covert/framing.hpp).  The channel's QPs run
// with the transport retry timer armed, so injected drops surface as
// retransmissions (visible in the per-trial harness accounting) rather
// than stranded WQEs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/framing.hpp"
#include "covert/priority_channel.hpp"
#include "faults/faults.hpp"
#include "harness/harness.hpp"

using namespace ragnar;

namespace {

struct Cell {
  double loss;  // Gilbert-Elliott long-run loss target
  bool framed;
};

}  // namespace

RAGNAR_SCENARIO(fault_sweep, "robustness",
                "covert goodput vs injected burst loss, raw vs framed decoding",
                "4 loss points x 1 trial, 56 bits",
                "6 loss points x 3 trials, 112 bits") {
  ctx.header(
      "fault sweep: covert goodput vs injected loss",
      "Gilbert-Elliott burst loss on the fabric; QP transport retry keeps "
      "the flows alive; framed = resync preamble + Hamming x interleave");

  const std::vector<double> loss_grid =
      ctx.full ? std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05, 0.10}
                : std::vector<double>{0.0, 0.01, 0.02, 0.05};
  // Whole 28-bit segments (7 Hamming codewords, the codeword-aligned
  // interleave geometry of FrameConfig's defaults).
  const std::size_t data_bits = ctx.full ? 112 : 56;
  // Mean burst duration: a quarter of a counter interval, so a bad-state
  // excursion corrupts one bit window or two (the contiguous-run regime the
  // codeword-aligned interleaver is sized for) without blanking the run.
  const sim::SimDur mean_burst = sim::us(500);
  // Full mode runs each cell at several seeds and reports the median
  // residual: a single Gilbert-Elliott trajectory can concentrate its
  // outage budget on one unlucky stretch, and one draw says little at
  // paper scale.
  const std::size_t trials_per_cell = ctx.full ? 3 : 1;

  std::vector<Cell> cells;
  for (double loss : loss_grid) {
    cells.push_back({loss, false});
    cells.push_back({loss, true});
  }

  harness::SweepRunner sweep;
  for (const Cell& cell : cells) {
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      char label[64];
      if (trials_per_cell > 1) {
        std::snprintf(label, sizeof label, "%s@%.2f%%/t%zu",
                      cell.framed ? "framed" : "raw", 100 * cell.loss, t);
      } else {
        std::snprintf(label, sizeof label, "%s@%.2f%%",
                      cell.framed ? "framed" : "raw", 100 * cell.loss);
      }
      sweep.add(label, [cell, data_bits,
                        mean_burst](harness::TrialContext& ctx) {
      covert::PriorityChannelConfig cfg;
      cfg.model = rnic::DeviceModel::kCX5;
      cfg.seed = ctx.seed;
      if (cell.loss > 0) {
        cfg.fault_plan = faults::FaultPlan::bursty_loss(
            cell.loss, mean_burst, ctx.seed ^ 0xfa017ull);
        cfg.qp_timeout = sim::us(500);
        cfg.qp_retry_cnt = 7;
      }
      covert::PriorityCovertChannel ch(cfg);

      sim::Xoshiro256 payload_rng(ctx.seed);
      const std::vector<int> data = covert::random_bits(data_bits, payload_rng);

      double residual = 0;
      double goodput = 0;
      std::uint64_t corrected = 0;
      if (cell.framed) {
        const covert::FramedRun run = covert::transmit_framed(
            [&ch](const std::vector<int>& bits) { return ch.transmit(bits); },
            data);
        residual = run.residual_error();
        goodput = run.goodput_bps();
        corrected = run.codewords_corrected;
      } else {
        const covert::ChannelRun run = ch.transmit(data);
        residual = run.error_rate();
        goodput = run.raw_bps();
      }

      const faults::FaultStats fs = ch.fault_stats();
      const verbs::QpReliabilityStats rs = ch.reliability_stats();
      harness::FaultAccounting fa;
      fa.delivered = fs.delivered;
      fa.injected_drops = fs.total_lost();
      fa.retransmits = rs.retransmits;
      fa.rnr_retries = rs.rnr_retries;
      fa.corrupted = fs.corrupted;
      fa.flap_dropped = fs.flap_dropped;
      fa.reordered = fs.reordered;
      fa.ge_steps = fs.ge_steps;
      fa.ge_bad_steps = fs.ge_bad_steps;
      ctx.note_faults(fa);
      ctx.note_sim_time(ch.testbed().sched().now());

      harness::Record rec;
      rec.set("mode", std::string(cell.framed ? "framed" : "raw"));
      rec.set("target_loss", cell.loss, 4);
      rec.set("outage_frac", fs.outage_fraction(), 4);
      rec.set("msg_loss", fs.loss_rate(), 4);
      rec.set("residual_error", residual, 4);
      rec.set("goodput_bps", goodput, 1);
      rec.set("codewords_corrected", corrected);
      return rec;
      });
    }
  }

  const auto report = ctx.run_sweep(sweep, "fault_sweep");

  // Aggregate the per-seed trials back into one row per cell (median
  // residual, mean of the fault accounting).  With one trial per cell this
  // is the identity.
  std::printf("\n%-14s %12s %12s %10s %15s %13s %12s %12s\n", "cell",
              "target_loss", "outage_frac", "msg_loss", "res_err_med",
              "goodput_bps", "retransmits", "drops");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    std::vector<double> residuals;
    double outage = 0, msg_loss = 0, goodput = 0;
    double retx = 0, drops = 0;
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      const auto& tr = report.trials[c * trials_per_cell + t];
      residuals.push_back(std::atof(tr.record.find("residual_error")->c_str()));
      outage += std::atof(tr.record.find("outage_frac")->c_str());
      msg_loss += std::atof(tr.record.find("msg_loss")->c_str());
      goodput += std::atof(tr.record.find("goodput_bps")->c_str());
      retx += static_cast<double>(tr.faults.retransmits);
      drops += static_cast<double>(tr.faults.injected_drops);
    }
    const double n = static_cast<double>(trials_per_cell);
    std::sort(residuals.begin(), residuals.end());
    const double res_med = residuals[residuals.size() / 2];
    char label[64];
    std::snprintf(label, sizeof label, "%s@%.2f%%",
                  cell.framed ? "framed" : "raw", 100 * cell.loss);
    std::printf("%-14s %12.4f %12.4f %10.4f %15.4f %13.1f %12.0f %12.0f\n",
                label, cell.loss, outage / n, msg_loss / n, res_med,
                goodput / n, retx / n, drops / n);
  }
  std::printf(
      "\ntakeaway: raw decoding degrades with burst loss while the framed "
      "path holds residual error near zero until the fabric spends more "
      "time bursting than carrying; goodput pays the fixed preamble+code "
      "overhead (%.0f%% of wire bits for the default frame).\n",
      100.0 * (1.0 - static_cast<double>(data_bits) /
                         static_cast<double>(covert::framed_wire_bits(
                             data_bits, covert::FrameConfig{}))));
  return 0;
}
