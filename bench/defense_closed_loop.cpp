// defense_closed_loop: the full enforcement seam end to end (docs/DEFENSE.md
// §closed loop).  Both detector families — the poll-based HarmonicMonitor
// and the streaming OnlinePipeline — reduce their per-tenant views to the
// same defense::Verdict currency and feed one defense::Enforcer, which
// drives the server device's rnic::ControlPort: flagged tenants get a
// per-tenant admission cap at the next control tick, and the cap lifts
// after a run of clean windows.  Against that loop runs the authenticated
// covert transport over the ULI channel, in two flavors:
//
//   static    the sender keeps hammering at its tuned symbol rate.  The
//             throttle crushes the ULI modulation, every slot fails its
//             MAC, the NAK/retry ladder burns out, and the session dies.
//   adaptive  the sender reads throttle-shaped loss out of its own ARQ
//             (garbled rounds, vanished bursts, lost ACKs) and backs its
//             inter-round gap off past the defense's lift hysteresis, then
//             probes back — trading rate for survival the way Bankrupt's
//             sender ducks congestion policers.
//
// A threshold sweep over the shared Grain-II stream-rate cap then prints
// three-way contract rows: covert goodput (static and adaptive) against
// the benign false-alarm rate at the same threshold.  The middle threshold
// is the designated operating point; the CI contract checks that there the
// loop cuts the static sender's goodput by >= 80% at a benign alarm rate
// <= 5%, while the adaptive sender measurably outlives it.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/framing.hpp"
#include "covert/transport/link.hpp"
#include "covert/transport/session.hpp"
#include "covert/uli_channel.hpp"
#include "defense/enforcer.hpp"
#include "defense/harmonic.hpp"
#include "defense/online/pipeline.hpp"
#include "harness/harness.hpp"
#include "obs/obs.hpp"
#include "revng/flow.hpp"
#include "revng/testbed.hpp"
#include "sim/random.hpp"

using namespace ragnar;
namespace ct = ragnar::covert::transport;

namespace {

std::vector<std::uint8_t> make_payload(std::size_t bytes, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> p(bytes);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return p;
}

// Recurring scheduled consumer: drains the ambient streaming sink into the
// OnlinePipeline and emits its verdicts into the shared Enforcer.  The
// HarmonicMonitor owns the window (drive_windows=true); this driver only
// observes, so the loop applies at most one transition per tenant per
// window no matter which detector flagged first.
class OnlineDriver {
 public:
  OnlineDriver(sim::Scheduler& sched, const defense::online::OnlineConfig& det,
               defense::Enforcer& enf)
      : sched_(sched), pipe_(det), enf_(enf) {}

  void start(sim::SimDur period) {
    period_ = period;
    // Offset off the monitor's tick so consume/emit never races the window
    // close at an equal timestamp.
    sched_.after(period_ / 2, [this] { tick(); });
  }

  const defense::online::OnlinePipeline& pipe() const { return pipe_; }

 private:
  void tick() {
    if (obs::StreamSink* sink = obs::stream()) pipe_.consume(*sink);
    pipe_.emit_verdicts(enf_, sched_.now());
    sched_.after(period_, [this] { tick(); });
  }

  sim::Scheduler& sched_;
  defense::online::OnlinePipeline pipe_;
  defense::Enforcer& enf_;
  sim::SimDur period_ = 0;
};

// The loop's fixed knobs.  The window is wider than one transport round
// (one slot frame at the Table-V bit period, ~12 ms): that is the
// detection latency an adaptive sender exploits — a single round can fit
// between control ticks, and duty-cycling rounds keeps the *windowed*
// stream rate under the cap.  The lift ladder is long enough that a static
// sender's back-to-back garbled rounds exhaust the tight ARQ budget well
// before the first lift.
constexpr sim::SimDur kWindow = sim::ms(20);
constexpr double kThrottleGbps = 0.25;
constexpr std::size_t kCleanToLift = 6;

struct CovertOutcome {
  ct::TransferReport report;
  std::uint64_t applies = 0;
  std::uint64_t lifts = 0;
  std::uint64_t verdicts = 0;         // enforcer-observed, both detectors
  std::uint64_t verdicts_flagged = 0;
  std::uint64_t online_samples = 0;   // pipeline stream samples consumed
  double tx_peak_mpps = 0;            // hottest monitored sender stream
  double probe_peak_mpps = 0;         // ... and the passive reader's
  double tx_flag_rate = 0;
};

// One covert transfer against the closed loop.  `thr_mpps` parameterizes
// BOTH detectors' Grain-II stream cap; enforce=false runs the same rig
// open-loop (detection without actuation) for the goodput baseline.
CovertOutcome run_covert(std::uint64_t seed, double thr_mpps, bool adaptive,
                         bool enforce, std::size_t payload_bytes) {
  covert::UliChannelConfig uli = covert::UliChannelConfig::best_for(
      rnic::DeviceModel::kCX4, covert::UliChannelKind::kInterMr, seed);
  uli.ambient_intensity = 0;  // quiet window; the defense is the adversary
  uli.bit_period = sim::us(60);
  uli.warmup_bits = 8;
  // Cool the decoder: the probe's steady READ stream sits under every swept
  // threshold, so enforcement lands on the modulating sender, not on the
  // passive reader (whose throttle would kill the channel for both
  // flavors and erase the adaptivity comparison).
  uli.rx_read_size = 256;
  uli.rx_queue_depth = 3;
  covert::UliCovertChannel ch(uli);

  defense::HarmonicPolicy pol;
  pol.grain2_stream_mpps_cap = thr_mpps;
  defense::HarmonicMonitor mon(ch.scheduler(), ch.server_device(), kWindow,
                               pol);

  defense::EnforcerPolicy epol;
  epol.throttle_gbps = kThrottleGbps;
  epol.clean_windows_to_lift = kCleanToLift;
  defense::Enforcer enf(epol);

  defense::online::OnlineConfig det;
  det.grain2_stream_mpps_cap = thr_mpps;
  // Out-of-range Grain-IV gate: in this rig the online arm contributes
  // Grain-II verdicts at the swept threshold, keeping the sweep a single
  // operating knob shared by both detectors.
  det.grain4_threshold = 1.1;
  OnlineDriver online(ch.scheduler(), det, enf);

  if (enforce) {
    enf.attach(&ch.server_device().control());
    mon.attach_enforcer(&enf, /*drive_windows=*/true);
    online.start(kWindow);
  }
  mon.start();

  ct::SchedulerClock clock(ch.scheduler());
  ct::FramedChannelLink data(
      [&ch](const std::vector<int>& bits) { return ch.transmit(bits); },
      covert::FrameConfig{});
  ct::ModeledFeedbackLink::Config fb;
  fb.seed = seed ^ 0xfeedbacULL;
  ct::ModeledFeedbackLink feedback(clock, fb);
  const ct::Key master{0x5261676e617231ULL, uli.seed};

  ct::TransportConfig tcfg;
  // One slot per round: a round fits inside one monitor window, so the
  // flag -> throttle -> garble sequence resolves round by round.
  tcfg.arq.burst = 1;
  // Tight budget: a sender that keeps transmitting into the throttle burns
  // a send per garbled round and dies before the first lift.
  tcfg.arq.max_retries = 4;
  if (adaptive) {
    tcfg.pacing.enabled = true;
    // Two lossy rounds reach a gap past the lift ladder
    // (kCleanToLift * kWindow = 120 ms), inside the ARQ budget; the probed
    // equilibrium also dilutes the windowed stream rate under the cap.
    tcfg.pacing.gap_step = sim::ms(80);
    tcfg.pacing.backoff_factor = 2.0;
    tcfg.pacing.gap_max = sim::ms(160);
    tcfg.pacing.clean_rounds_to_probe = 4;
  }
  ct::CovertTransport transport(data, feedback, clock, master, tcfg);

  CovertOutcome out;
  out.report = transport.transfer(make_payload(payload_bytes, seed ^ 0xf11eULL),
                                  0x7a);
  out.applies = enf.actions_applied();
  out.lifts = enf.actions_lifted();
  out.verdicts = enf.verdicts_observed();
  out.verdicts_flagged = enf.verdicts_flagged();
  out.online_samples = online.pipe().samples_consumed();
  for (const defense::TenantVerdict& v : mon.verdicts()) {
    if (v.src == ch.tx_node()) {
      out.tx_peak_mpps = std::max(out.tx_peak_mpps, v.peak_stream_mpps);
    }
    if (v.src == ch.rx_node()) {
      out.probe_peak_mpps = std::max(out.probe_peak_mpps, v.peak_stream_mpps);
    }
  }
  out.tx_flag_rate = mon.flag_rate(ch.tx_node());
  return out;
}

// Benign arm: a steady 4 KiB-READ tenant under the same policy + enforcer
// stack.  Its flag rate at the swept threshold IS the false-alarm rate the
// contract bounds; any spurious throttle also lands in the enforcement
// audit channel (actions columns in the CSV).
struct BenignOutcome {
  double alarm_rate = 0;
  std::uint64_t applies = 0;
  double peak_mpps = 0;
};

BenignOutcome run_benign(std::uint64_t seed, double thr_mpps) {
  revng::Testbed bed(rnic::DeviceModel::kCX4, seed, 1);
  defense::HarmonicPolicy pol;
  pol.grain2_stream_mpps_cap = thr_mpps;
  defense::HarmonicMonitor mon(bed.sched(), bed.server().device(), sim::ms(1),
                               pol);
  defense::Enforcer enf(
      defense::EnforcerPolicy{kThrottleGbps, kCleanToLift});
  enf.attach(&bed.server().device().control());
  mon.attach_enforcer(&enf, /*drive_windows=*/true);
  mon.start();

  revng::FlowSpec benign;
  benign.opcode = verbs::WrOpcode::kRdmaRead;
  benign.msg_size = 4096;
  benign.qp_num = 1;
  benign.depth_per_qp = 2;
  benign.duration = sim::ms(8);
  revng::Flow f(bed, 0, benign);
  bed.sched().run_while([&] { return !f.finished(); });

  BenignOutcome out;
  const rnic::NodeId tenant = bed.client(0).device().node();
  out.alarm_rate = mon.flag_rate(tenant);
  out.applies = enf.actions_applied();
  for (const defense::TenantVerdict& v : mon.verdicts()) {
    if (v.src == tenant) out.peak_mpps = std::max(out.peak_mpps, v.peak_stream_mpps);
  }
  return out;
}

}  // namespace

RAGNAR_SCENARIO(defense_closed_loop, "defense",
                "closed-loop enforcement (Verdict -> Enforcer -> ControlPort) "
                "vs static and adaptive covert senders",
                "3 thresholds x {benign, static, adaptive} + open-loop "
                "baseline, 24 B payload",
                "--full 5 thresholds, 24 B payload") {
  ctx.header(
      "closed-loop defense: typed enforcement seam vs an adaptive sender",
      "HarmonicMonitor + OnlinePipeline verdicts through one Enforcer into "
      "live RxAdmission caps; covert transport goodput vs benign false "
      "alarms across the shared Grain-II threshold");

  // The operating threshold sits in the stealth gap: above a lone
  // gap-isolated round diluted across one window (~1.3-1.7 Mpps) but below
  // back-to-back rounds (~2.2 Mpps) — exactly the margin the adaptive
  // sender's inter-round gaps buy.
  const std::vector<double> thresholds =
      ctx.full ? std::vector<double>{0.15, 0.75, 1.9, 3.0, 8.0}
               : std::vector<double>{0.15, 1.9, 8.0};
  const std::size_t operating = ctx.full ? 2 : 1;  // thr = 1.9 Mpps
  // 24 B (3 segments) in both modes: the adaptive sender's flag/lift cycle
  // costs ~2 garbled sends per segment, so longer transfers only re-roll
  // the same equilibrium against the fixed ARQ budget.  Full mode earns
  // its keep through the denser threshold grid instead.
  const std::size_t payload_bytes = 24;
  const std::uint64_t covert_seed = ctx.seed;
  const std::uint64_t benign_seed = ctx.seed + 1;

  // Trial grid: [0] = open-loop baseline, then per threshold
  // {benign, static, adaptive}.
  CovertOutcome baseline;
  std::vector<BenignOutcome> benign(thresholds.size());
  std::vector<CovertOutcome> statics(thresholds.size());
  std::vector<CovertOutcome> adaptives(thresholds.size());

  harness::SweepRunner sweep;
  sweep.add("baseline/open-loop", [&](harness::TrialContext&) {
    baseline = run_covert(covert_seed, thresholds.back(), /*adaptive=*/false,
                          /*enforce=*/false, payload_bytes);
    harness::Record rec;
    rec.set("kind", std::string("baseline"));
    rec.set("goodput_bps", baseline.report.goodput_bps(), 1);
    rec.set("outcome", std::string(baseline.report.outcome_name()));
    rec.set("tx_peak_mpps", baseline.tx_peak_mpps, 3);
    rec.set("probe_peak_mpps", baseline.probe_peak_mpps, 3);
    return rec;
  });
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double thr = thresholds[i];
    char label[48];
    std::snprintf(label, sizeof label, "benign/thr=%.2f", thr);
    sweep.add(label, [&benign, benign_seed, thr, i](harness::TrialContext&) {
      benign[i] = run_benign(benign_seed, thr);
      harness::Record rec;
      rec.set("kind", std::string("benign"));
      rec.set("alarm_rate", benign[i].alarm_rate, 4);
      rec.set("false_throttles", benign[i].applies);
      rec.set("peak_mpps", benign[i].peak_mpps, 3);
      return rec;
    });
    std::snprintf(label, sizeof label, "static/thr=%.2f", thr);
    sweep.add(label, [&statics, covert_seed, thr, i,
                      payload_bytes](harness::TrialContext&) {
      statics[i] = run_covert(covert_seed, thr, /*adaptive=*/false,
                              /*enforce=*/true, payload_bytes);
      harness::Record rec;
      rec.set("kind", std::string("static"));
      rec.set("goodput_bps", statics[i].report.goodput_bps(), 1);
      rec.set("outcome", std::string(statics[i].report.outcome_name()));
      rec.set("garbled", statics[i].report.garbled_slots);
      rec.set("retx", statics[i].report.retransmits);
      rec.set("applies", statics[i].applies);
      rec.set("lifts", statics[i].lifts);
      return rec;
    });
    std::snprintf(label, sizeof label, "adaptive/thr=%.2f", thr);
    sweep.add(label, [&adaptives, covert_seed, thr, i,
                      payload_bytes](harness::TrialContext&) {
      adaptives[i] = run_covert(covert_seed, thr, /*adaptive=*/true,
                                /*enforce=*/true, payload_bytes);
      harness::Record rec;
      rec.set("kind", std::string("adaptive"));
      rec.set("goodput_bps", adaptives[i].report.goodput_bps(), 1);
      rec.set("outcome", std::string(adaptives[i].report.outcome_name()));
      rec.set("garbled", adaptives[i].report.garbled_slots);
      rec.set("retx", adaptives[i].report.retransmits);
      rec.set("pace_backoffs", adaptives[i].report.pace_backoffs);
      rec.set("pace_probes", adaptives[i].report.pace_probes);
      rec.set("applies", adaptives[i].applies);
      rec.set("lifts", adaptives[i].lifts);
      return rec;
    });
  }
  harness::SweepRunner::Options sopts = ctx.sweep_options();
  sopts.obs = true;     // the control port publishes EnforcementAction...
  sopts.stream = true;  // ... into the trial sink; applies/lifts land in CSV
  ctx.run_sweep(sweep, "defense_closed_loop", sopts);

  // ---- three-way contract rows ------------------------------------------
  std::printf(
      "\nrates: sender peak stream %.2f Mpps, probe %.2f Mpps, benign %.2f "
      "Mpps (open loop)\n",
      baseline.tx_peak_mpps, baseline.probe_peak_mpps,
      benign[operating].peak_mpps);
  std::printf("baseline goodput (open loop): %.1f bps, outcome=%s\n",
              baseline.report.goodput_bps(), baseline.report.outcome_name());

  std::printf("\n%-10s %10s %14s %14s %10s %10s %12s\n", "thr_mpps", "alarm",
              "static_bps", "adaptive_bps", "st_out", "ad_out",
              "applies/lifts");
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    char al[24];
    std::snprintf(al, sizeof al, "%llu+%llu/%llu+%llu",
                  static_cast<unsigned long long>(statics[i].applies),
                  static_cast<unsigned long long>(adaptives[i].applies),
                  static_cast<unsigned long long>(statics[i].lifts),
                  static_cast<unsigned long long>(adaptives[i].lifts));
    std::printf("%-10.2f %10.2f %14.1f %14.1f %10s %10s %12s\n",
                thresholds[i], benign[i].alarm_rate,
                statics[i].report.goodput_bps(),
                adaptives[i].report.goodput_bps(),
                statics[i].report.outcome_name(),
                adaptives[i].report.outcome_name(), al);
  }

  // One greppable row per threshold: the three-way tradeoff.
  const double free_bps = baseline.report.goodput_bps();
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double st = statics[i].report.goodput_bps();
    const double ad = adaptives[i].report.goodput_bps();
    std::printf(
        "closed-loop: thr=%.2f alarm=%.2f goodput_static=%.1f "
        "goodput_adaptive=%.1f injected_garbled=%llu cut_static=%.1f%% "
        "cut_adaptive=%.1f%%\n",
        thresholds[i], benign[i].alarm_rate, st, ad,
        static_cast<unsigned long long>(statics[i].report.garbled_slots),
        free_bps > 0 ? 100.0 * std::max(0.0, 1.0 - st / free_bps) : 0.0,
        free_bps > 0 ? 100.0 * std::max(0.0, 1.0 - ad / free_bps) : 0.0);
  }

  // ---- the CI contract at the operating threshold -----------------------
  const double op_alarm = benign[operating].alarm_rate;
  const double op_static = statics[operating].report.goodput_bps();
  const double op_adaptive = adaptives[operating].report.goodput_bps();
  const double cut =
      free_bps > 0 ? std::max(0.0, 1.0 - op_static / free_bps) : 0.0;
  const bool both_detectors =
      statics[operating].verdicts_flagged > 0 &&
      statics[operating].online_samples > 0;
  const bool closed_ok = cut >= 0.80 && op_alarm <= 0.05 &&
                         statics[operating].applies > 0 && both_detectors;
  const bool adaptive_ok =
      op_adaptive > 2.0 * op_static && adaptives[operating].report.complete();
  std::printf(
      "\ncontract=CLOSED-LOOP thr=%.2f false_alarm=%.2f goodput_free=%.1f "
      "goodput_static=%.1f cut=%.1f%% applies=%llu verdict=%s\n",
      thresholds[operating], op_alarm, free_bps, op_static, 100.0 * cut,
      static_cast<unsigned long long>(statics[operating].applies),
      closed_ok ? "PASS" : "FAIL");
  std::printf(
      "contract=ADAPTIVE thr=%.2f goodput_adaptive=%.1f goodput_static=%.1f "
      "backoffs=%llu probes=%llu outcome=%s verdict=%s\n",
      thresholds[operating], op_adaptive, op_static,
      static_cast<unsigned long long>(
          adaptives[operating].report.pace_backoffs),
      static_cast<unsigned long long>(adaptives[operating].report.pace_probes),
      adaptives[operating].report.outcome_name(),
      adaptive_ok ? "PASS" : "FAIL");

  std::printf(
      "\ntakeaway: one typed seam carries both detectors' verdicts into "
      "live admission caps — the static sender's session burns out under "
      "throttle-shaped loss, while the adaptive sender survives by pacing "
      "itself under the lift hysteresis, surrendering rate for stealth; "
      "the benign tenant at the same operating point stays unflagged.\n");

  return closed_ok && adaptive_ok ? 0 : 1;
}
