// Robustness ablation: how the covert channels degrade as more bystander
// ("regular traffic") clients share the server.  The paper's testbed had
// one; a production service has many.  Shows raw error rate, effective
// bandwidth, and what the ECC framing recovers at each crowd size.
#include <cstdio>

#include "scenario/scenario.hpp"
#include "covert/ecc.hpp"
#include "covert/uli_channel.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(ablation_bystanders, "extension",
                "covert error / effective bandwidth vs bystander client count",
                "192-bit payload, 0-4 bystanders",
                "512-bit payload, 0-4 bystanders") {
  ctx.header("covert channel vs bystander count",
                "error / effective bandwidth as the server gets crowded");

  sim::Xoshiro256 rng(ctx.seed);
  const auto payload = covert::random_bits(ctx.full ? 512 : 192, rng);

  for (auto kind :
       {covert::UliChannelKind::kInterMr, covert::UliChannelKind::kIntraMr}) {
    std::printf("\n%s channel (CX-5):\n",
                kind == covert::UliChannelKind::kInterMr ? "inter-MR"
                                                         : "intra-MR");
    std::printf("%-12s %-10s %-14s %-14s\n", "bystanders", "raw err",
                "effective Kbps", "ECC resid err");
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{4}}) {
      auto cfg = covert::UliChannelConfig::best_for(rnic::DeviceModel::kCX5,
                                                    kind, ctx.seed);
      cfg.ambient_clients = n;
      if (n == 0) cfg.ambient_intensity = 0;
      covert::UliCovertChannel ch(cfg);
      const auto run = ch.transmit(payload);

      covert::UliCovertChannel ecc_ch(cfg);
      const auto ecc = covert::transmit_with_ecc(
          [&](const std::vector<int>& bits) { return ecc_ch.transmit(bits); },
          payload, /*interleave_depth=*/16);

      std::printf("%-12zu %8.2f%% %14.1f %12.2f%%\n", n,
                  100 * run.error_rate(), run.effective_bps() / 1e3,
                  100 * ecc.residual_error());
    }
  }
  std::printf("\nreading: the volatile channel tolerates a busy server — "
              "errors grow with crowding but the decoder's median "
              "calibration and ECC keep the channel usable well past the "
              "paper's single-bystander setting.\n");
  return 0;
}
