// Covert file transfer: the authenticated transport (session handshake,
// sliding-window selective-ACK ARQ, encrypt-then-MAC slots) moving a file
// end-to-end over the Grain-III ULI covert channel while the fault fabric
// injects loss.
//
//   covert_transfer           goodput / retransmission count vs injected
//                             uniform loss; every delivered byte is
//                             authenticated (the AUTH-OK contract line).
//   covert_transfer_degraded  a sustained link flap exhausts the retry
//                             budget -> deterministic PARTIAL-DELIVERY
//                             (never a hang); a shorter flap on the
//                             feedback path alone is ridden out by the
//                             backoff ladder and recovers after it closes.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/framing.hpp"
#include "covert/transport/link.hpp"
#include "covert/transport/session.hpp"
#include "covert/uli_channel.hpp"
#include "faults/faults.hpp"
#include "harness/harness.hpp"

using namespace ragnar;
namespace ct = ragnar::covert::transport;

namespace {

// Deterministic pseudo-file payload.
std::vector<std::uint8_t> make_payload(std::size_t bytes, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> p(bytes);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return p;
}

struct TransferCell {
  // ULI channel under the transport, with the cell's fault campaign armed.
  covert::UliChannelConfig uli;
  ct::ModeledFeedbackLink::Config feedback;
  ct::TransportConfig transport;
  std::vector<std::uint8_t> payload;
  std::uint8_t session = 0x42;
};

struct TransferResult {
  ct::TransferReport report;
  faults::FaultStats fs;
  verbs::QpReliabilityStats rs;
  std::uint64_t feedback_lost = 0;
  std::uint64_t segments_suspect = 0;
};

// Run one end-to-end transfer and fill the harness accounting.
TransferResult run_transfer(const TransferCell& cell,
                            harness::TrialContext& ctx) {
  covert::UliCovertChannel ch(cell.uli);
  ct::SchedulerClock clock(ch.scheduler());
  ct::FramedChannelLink data(
      [&ch](const std::vector<int>& bits) { return ch.transmit(bits); },
      covert::FrameConfig{});
  ct::ModeledFeedbackLink feedback(clock, cell.feedback);
  const ct::Key master{0x5261676e617231ULL, cell.uli.seed};
  ct::CovertTransport transport(data, feedback, clock, master, cell.transport);

  TransferResult r;
  r.report = transport.transfer(cell.payload, cell.session);
  r.fs = ch.fault_stats();
  r.rs = ch.reliability_stats();
  r.feedback_lost = feedback.lost();
  r.segments_suspect = data.segments_suspect();

  harness::FaultAccounting fa;
  fa.delivered = r.fs.delivered;
  fa.injected_drops = r.fs.total_lost();
  fa.retransmits = r.rs.retransmits;
  fa.rnr_retries = r.rs.rnr_retries;
  fa.corrupted = r.fs.corrupted;
  fa.flap_dropped = r.fs.flap_dropped;
  fa.reordered = r.fs.reordered;
  fa.ge_steps = r.fs.ge_steps;
  fa.ge_bad_steps = r.fs.ge_bad_steps;
  ctx.note_faults(fa);
  ctx.note_sim_time(clock.now());
  return r;
}

harness::Record record_of(const TransferResult& r) {
  harness::Record rec;
  rec.set("outcome", std::string(r.report.outcome_name()));
  rec.set("delivered_bytes", static_cast<std::uint64_t>(r.report.delivered_bytes));
  rec.set("payload_bytes", static_cast<std::uint64_t>(r.report.payload_bytes));
  rec.set("auth", std::string(r.report.complete() && r.report.byte_exact
                                  ? "AUTH-OK"
                                  : "partial"));
  rec.set("rounds", r.report.rounds);
  rec.set("arq_retransmits", r.report.retransmits);
  rec.set("auth_rejects", r.report.auth_rejects);
  rec.set("acks_lost", r.report.acks_lost);
  rec.set("duplicates", r.report.duplicates);
  rec.set("goodput_bps", r.report.goodput_bps(), 1);
  return rec;
}

}  // namespace

RAGNAR_SCENARIO(covert_transfer, "robustness",
                "authenticated file transfer over the ULI channel vs loss",
                "32 B file, 3 loss points", "96 B file, 5 loss points") {
  ctx.header(
      "covert transfer: authenticated transport over the ULI channel",
      "session handshake + selective-ACK ARQ + encrypt-then-MAC slots over "
      "Grain-III; uniform loss injected on the fabric and the feedback path");

  const std::vector<double> loss_grid =
      ctx.full ? std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10}
               : std::vector<double>{0.0, 0.02, 0.05};
  const std::size_t payload_bytes = ctx.full ? 96 : 32;

  std::vector<TransferResult> results(loss_grid.size());
  harness::SweepRunner sweep;
  for (std::size_t i = 0; i < loss_grid.size(); ++i) {
    const double loss = loss_grid[i];
    char label[32];
    std::snprintf(label, sizeof label, "uli@%.2f%%", 100 * loss);
    sweep.add(label, [i, loss, payload_bytes,
                      &results](harness::TrialContext& tctx) {
      TransferCell cell;
      cell.uli = covert::UliChannelConfig::best_for(
          rnic::DeviceModel::kCX4, covert::UliChannelKind::kInterMr,
          tctx.seed);
      // The covert pair picks a quiet window for the bulk transfer: the
      // bystander noise floor (Table V's raw-error band) is its own, already
      // reproduced experiment; the adversarial substrate under test here is
      // the injected fault campaign.
      cell.uli.ambient_intensity = 0;
      // Bulk-transfer symbol rate: at the Table-V bit period every window
      // carries ~40 fabric packets, so even small per-packet loss perturbs
      // nearly every window.  Halving the symbol rate averages the loss
      // stalls out, and one uniform rate keeps the goodput column a pure
      // ARQ comparison across cells.
      cell.uli.bit_period = sim::us(60);
      // The transport idles the channel between frames (ACK exchanges,
      // retransmission waits); re-warm the probe pipelines so the phase
      // search stays locked.
      cell.uli.warmup_bits = 8;
      if (loss > 0) {
        cell.uli.fault_plan =
            faults::FaultPlan::uniform_loss(loss, tctx.seed ^ 0xc0feeULL);
        // Transport retry timer on the covert QPs: injected drops become
        // retransmitted READs, not stranded WQEs.  The timer must be short
        // against the bit period — a recovery stall spanning whole windows
        // erases more signal than the drop itself.
        cell.uli.qp_timeout = sim::us(15);
        cell.uli.qp_retry_cnt = 7;
        // Even post-FEC, a ~3% residual window-error rate garbles whole
        // 136-bit slots at a non-trivial per-attempt rate; give the session
        // enough budget that the campaign has to kill the fabric, not just
        // tax it, to stop the transfer.
        cell.transport.handshake_retries = 8;
        cell.transport.arq.max_retries = 10;
      }
      cell.feedback.loss_p = loss;
      cell.feedback.seed = tctx.seed ^ 0xfeedbacULL;
      cell.payload = make_payload(payload_bytes, tctx.seed ^ 0xf11eULL);
      results[i] = run_transfer(cell, tctx);
      return record_of(results[i]);
    });
  }
  ctx.run_sweep(sweep, "covert_transfer");

  std::printf("\ndelivery contract (one line per cell):\n");
  for (std::size_t i = 0; i < loss_grid.size(); ++i) {
    char label[32];
    std::snprintf(label, sizeof label, "uli@%.2f%%", 100 * loss_grid[i]);
    results[i].report.print_contract_line(stdout, label);
  }

  std::printf("\n%-10s %10s %12s %8s %8s %10s %9s %12s\n", "cell", "bytes",
              "goodput_bps", "retx", "rounds", "auth_rej", "acks_lost",
              "qp_retx");
  for (std::size_t i = 0; i < loss_grid.size(); ++i) {
    const TransferResult& r = results[i];
    char label[32];
    std::snprintf(label, sizeof label, "uli@%.2f%%", 100 * loss_grid[i]);
    std::printf("%-10s %6zu/%-3zu %12.1f %8llu %8llu %10llu %9llu %12llu\n",
                label, r.report.delivered_bytes, r.report.payload_bytes,
                r.report.goodput_bps(),
                static_cast<unsigned long long>(r.report.retransmits),
                static_cast<unsigned long long>(r.report.rounds),
                static_cast<unsigned long long>(r.report.auth_rejects),
                static_cast<unsigned long long>(r.report.acks_lost),
                static_cast<unsigned long long>(r.rs.retransmits));
  }
  std::printf(
      "\ntakeaway: the transport turns the lossy covert channel into a "
      "reliable authenticated pipe — every delivered byte passed the "
      "per-slot MAC, injected loss up to 2%% surfaces as bounded "
      "retransmissions (ARQ above, QP transport retry below), and beyond "
      "the channel's capacity the session degrades to a deterministic "
      "partial-delivery report instead of hanging.\n");

  // Contract: byte-exact authenticated delivery at every cell up to 2%
  // injected loss.  Higher-loss cells are past the raw channel's FEC
  // capacity (the raw window-error rate saturates near 11% at 5% loss, no
  // matter how slow the symbol rate) — they must terminate deterministically
  // but are allowed to report partial delivery.
  int rc = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TransferResult& r = results[i];
    if (loss_grid[i] <= 0.02 && !(r.report.complete() && r.report.byte_exact))
      rc = 1;
  }
  return rc;
}

RAGNAR_SCENARIO(covert_transfer_degraded, "robustness",
                "retry exhaustion under sustained flap; recovery after flap",
                "2 cells (exhaust, recover), 32 B file",
                "2 cells (exhaust, recover), 64 B file") {
  ctx.header(
      "covert transfer degradation: dead fabric vs transient flap",
      "a flap outliving the whole retry ladder kills the session into a "
      "deterministic partial-delivery report; a feedback-only flap shorter "
      "than the backoff ladder is survived and the transfer completes");

  const std::size_t payload_bytes = ctx.full ? 64 : 32;

  std::vector<TransferResult> results(2);
  harness::SweepRunner sweep;

  // Cell 0 — exhaust: the fabric flaps down just after the handshake and
  // stays down past every backoff deadline.  The QPs run without the retry
  // timer (timeout 0): stranded reads model a hard outage, and the
  // transport's own ARQ budget is what bounds the session.
  sweep.add("flap-exhaust", [payload_bytes,
                             &results](harness::TrialContext& tctx) {
    TransferCell cell;
    cell.uli = covert::UliChannelConfig::best_for(
        rnic::DeviceModel::kCX4, covert::UliChannelKind::kInterMr, tctx.seed);
    cell.uli.ambient_intensity = 0;  // quiet window; the flap is the story
    cell.uli.bit_period = sim::us(60);
    cell.uli.warmup_bits = 8;
    faults::LinkFlap flap;
    flap.start = sim::ms(25);
    flap.end = sim::sec(10);
    cell.uli.fault_plan.enabled = true;
    cell.uli.fault_plan.seed = tctx.seed ^ 0xf1a9ULL;
    cell.uli.fault_plan.flaps.push_back(flap);
    cell.feedback.flaps.push_back(flap);  // the ACK path crosses it too
    cell.feedback.seed = tctx.seed ^ 0xfeedbacULL;
    cell.payload = make_payload(payload_bytes, tctx.seed ^ 0xf11eULL);
    results[0] = run_transfer(cell, tctx);
    return record_of(results[0]);
  });

  // Cell 1 — recover: the forward fabric stays clean; only the feedback
  // path flaps, for longer than one whole retransmission timeout but
  // shorter than the capped backoff ladder.  Every ACK inside the window
  // is lost, the sender backs off and re-sends, and the first ACK after
  // the flap closes completes the transfer (duplicates at the receiver,
  // zero corruption).
  sweep.add("flap-recover", [payload_bytes,
                             &results](harness::TrialContext& tctx) {
    TransferCell cell;
    cell.uli = covert::UliChannelConfig::best_for(
        rnic::DeviceModel::kCX4, covert::UliChannelKind::kInterMr, tctx.seed);
    cell.uli.ambient_intensity = 0;  // quiet window; the flap is the story
    cell.uli.bit_period = sim::us(60);
    cell.uli.warmup_bits = 8;
    faults::LinkFlap flap;
    flap.start = sim::ms(15);
    flap.end = sim::ms(350);
    cell.feedback.flaps.push_back(flap);
    cell.feedback.seed = tctx.seed ^ 0xfeedbacULL;
    cell.payload = make_payload(payload_bytes, tctx.seed ^ 0xf11eULL);
    results[1] = run_transfer(cell, tctx);
    return record_of(results[1]);
  });

  ctx.run_sweep(sweep, "covert_transfer_degraded");

  std::printf("\ndelivery contract (one line per cell):\n");
  results[0].report.print_contract_line(stdout, "flap-exhaust");
  results[1].report.print_contract_line(stdout, "flap-recover");

  std::printf(
      "\nflap-exhaust: outcome=%s rounds=%llu handshake_sends=%llu "
      "acks_lost=%llu missing_segs=%zu\n",
      results[0].report.outcome_name(),
      static_cast<unsigned long long>(results[0].report.rounds),
      static_cast<unsigned long long>(results[0].report.handshake_sends),
      static_cast<unsigned long long>(results[0].report.acks_lost),
      results[0].report.missing.size());
  std::printf(
      "flap-recover: outcome=%s rounds=%llu retx=%llu duplicates=%llu "
      "acks_lost=%llu elapsed_ms=%.1f\n",
      results[1].report.outcome_name(),
      static_cast<unsigned long long>(results[1].report.rounds),
      static_cast<unsigned long long>(results[1].report.retransmits),
      static_cast<unsigned long long>(results[1].report.duplicates),
      static_cast<unsigned long long>(results[1].report.acks_lost),
      sim::to_sec(results[1].report.elapsed()) * 1e3);
  std::printf(
      "\ntakeaway: retry exhaustion is a report, not a hang — the dead "
      "fabric yields a deterministic PARTIAL-DELIVERY with the delivered "
      "prefix and the missing segment list, while a transient feedback "
      "flap is absorbed by the capped exponential backoff and the session "
      "completes once the flap closes.\n");

  // Contract: cell 0 must degrade (never complete), cell 1 must recover.
  const bool ok = !results[0].report.complete() &&
                  results[1].report.complete() && results[1].report.byte_exact;
  return ok ? 0 : 1;
}
