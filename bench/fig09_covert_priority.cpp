// Reproduces Fig 9 + the Table V "Inter Traffic-Class" column: the
// Grain-I/II priority covert channel sending the paper's bitstream
// 1101111101010010 on CX-4/5/6.  The receiver's per-interval bandwidth
// shows a mild dip for bit 1 (128 B writes) and a deep dip for bit 0
// (2048 B bulk writes); the channel is counter-interval-limited, i.e.
// ~1 bit per counter-update interval (the paper's ethtool interval is ~1 s,
// hence its "1.0-1.1 bps").
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "covert/priority_channel.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig09_covert_priority, "Fig 9",
                "priority covert channel sending the paper bitstream on CX-4/5/6",
                "16-bit paper bitstream, all devices",
                "16-bit paper bitstream, all devices") {
  ctx.header("priority-based covert channel (Fig 9 / Table V col 1)",
                "Tx: 128 B (bit 1) vs 2048 B (bit 0) WRITEs; Rx: monitored "
                "small-READ bandwidth");

  const auto payload = covert::bits_from_string("1101111101010010");

  for (auto model : scenario::kAllDevices) {
    covert::PriorityChannelConfig cfg;
    cfg.model = model;
    cfg.seed = ctx.seed;
    covert::PriorityCovertChannel ch(cfg);
    const auto run = ch.transmit(payload);

    std::printf("\n%s  (counter interval = %s)\n", rnic::device_name(model),
                sim::format_duration(cfg.counter_interval).c_str());
    std::printf("  sent     %s\n", covert::bits_to_string(run.sent).c_str());
    std::printf("  received %s\n",
                covert::bits_to_string(run.received).c_str());
    std::printf("  error rate %.2f%%   bits/interval %.2f   threshold %.3f "
                "Gb/s\n",
                100 * run.error_rate(), ch.bits_per_interval(run),
                run.threshold);
    std::printf("  Rx bandwidth per bit window (Gb/s):\n   ");
    for (std::size_t i = 0; i < run.rx_metric.size(); ++i) {
      std::printf(" %c:%.2f", run.sent[i] ? '1' : '0', run.rx_metric[i]);
    }
    std::printf("\n%s",
                sim::ascii_plot(run.rx_metric, 64, 10,
                                "  monitored bandwidth (Fig 9 trace)")
                    .c_str());
  }
  std::printf("\npaper: 1.0 / 1.1 / 1.1 bits per second with ~1 s ethtool "
              "counters, 0%% error.  We reproduce 1 bit per counter interval "
              "at 0%% error; the interval is a simulation parameter.\n");
  return 0;
}
