// Model-validation ablation: throughput vs message size and vs QP count,
// per device.  These curves are the classic RDMA design-guideline shapes
// (Kalia et al., ATC'16) and sanity-check that the calibrated profiles
// behave like the NICs of Table III: small messages are scheduler-bound,
// large ones are link/PCIe-bound, CX-5's port outruns its PCIe3 x8 host
// interface, and multiple QPs lift small-message rates.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/flow.hpp"
#include "revng/testbed.hpp"

using namespace ragnar;

namespace {

double run_flow(rnic::DeviceModel model, std::uint64_t seed,
                verbs::WrOpcode op, std::uint32_t size, std::uint32_t qps) {
  revng::Testbed bed(model, seed, 1);
  revng::FlowSpec s;
  s.opcode = op;
  s.msg_size = size;
  s.qp_num = qps;
  s.depth_per_qp = 16;
  s.duration = sim::us(400);
  revng::Flow f(bed, 0, s);
  bed.sched().run_while([&] { return !f.finished(); });
  return f.achieved_gbps();
}

}  // namespace

RAGNAR_SCENARIO(ablation_throughput, "Table III",
                "throughput vs message size / QP count per device (validation)",
                "6 sizes, 5 QP counts, all devices",
                "6 sizes, 5 QP counts, all devices") {
  ctx.header("throughput scaling (model validation)",
                "msg-size and QP-count curves per device");

  const std::vector<std::uint32_t> sizes{64,   256,  1024, 4096,
                                         16384, 65536};
  std::printf("\nREAD throughput (Gb/s) vs message size (2 QPs):\n%-10s",
              "size");
  for (auto m : scenario::kAllDevices) std::printf(" %12s", rnic::device_name(m));
  std::printf("   link caps: 25/100/200, PCIe: 50/50/200\n");
  for (auto size : sizes) {
    std::printf("%-10u", size);
    for (auto m : scenario::kAllDevices) {
      std::printf(" %12.2f", run_flow(m, ctx.seed, verbs::WrOpcode::kRdmaRead,
                                      size, 2));
    }
    std::printf("\n");
  }

  std::printf("\nWRITE throughput (Gb/s) vs message size (2 QPs):\n%-10s",
              "size");
  for (auto m : scenario::kAllDevices) std::printf(" %12s", rnic::device_name(m));
  std::printf("\n");
  for (auto size : sizes) {
    std::printf("%-10u", size);
    for (auto m : scenario::kAllDevices) {
      std::printf(" %12.2f", run_flow(m, ctx.seed + 1,
                                      verbs::WrOpcode::kRdmaWrite, size, 2));
    }
    std::printf("\n");
  }

  std::printf("\n64 B READ ops/s (millions) vs QP count (CX-5):\n%-10s %s\n",
              "qps", "Mops");
  for (std::uint32_t q : {1u, 2u, 4u, 8u, 16u}) {
    const double gbps =
        run_flow(rnic::DeviceModel::kCX5, ctx.seed + 2,
                 verbs::WrOpcode::kRdmaRead, 64, q);
    std::printf("%-10u %.2f\n", q, gbps * 1e9 / 8.0 / 64.0 / 1e6);
  }
  std::printf("\nexpected shapes: large transfers saturate min(link, PCIe); "
              "CX-5 tops out near its PCIe3 x8 (~50 Gb/s) despite the 100G "
              "port; small-message rates are translation/scheduler-bound "
              "and scale sub-linearly with QPs.\n");
  return 0;
}
