// Ablation of the RNIC model's microarchitectural mechanisms: switch each
// one off and show which paper finding disappears.  This is the evidence
// that the reproduction's findings are *carried by the modeled mechanisms*
// (DESIGN.md section 5), not baked into the attack code.
//
//   mechanism removed              -> experiment that should collapse
//   ---------------------------------------------------------------
//   shared recent-line cache       -> Fig 13 snoop (argmin accuracy)
//   MR context register            -> inter-MR channel (error -> ~50%)
//   alignment penalties (8B/64B)   -> intra-MR channel (error -> ~50%)
//   second dispatch lane           -> KF2 (>200% total vanishes)
//   staging-port pressure          -> KF1a medium-read drop vanishes
//   egress-over-ingress pressure   -> KF1a write loss vanishes
#include <cstdio>

#include "scenario/scenario.hpp"
#include "covert/uli_channel.hpp"
#include "revng/sweeps.hpp"
#include "side/snoop.hpp"

using namespace ragnar;

namespace {

double channel_error(const rnic::DeviceProfile& prof,
                     covert::UliChannelKind kind, std::uint64_t seed) {
  auto cfg = covert::UliChannelConfig::best_for(prof.model, kind, seed);
  cfg.profile_override = prof;
  cfg.ambient_intensity = 0;  // isolate the mechanism, no bystander noise
  covert::UliCovertChannel ch(cfg);
  sim::Xoshiro256 rng(seed + 1);
  return ch.transmit(covert::random_bits(96, rng)).error_rate();
}

double snoop_argmin_accuracy(const rnic::DeviceProfile& prof,
                             std::uint64_t seed) {
  side::SnoopConfig cfg;
  cfg.model = prof.model;
  cfg.seed = seed;
  cfg.profile_override = prof;
  side::SnoopAttack attack(cfg);
  std::size_t ok = 0, total = 0;
  for (std::size_t c = 0; c < 16; c += 3) {
    ok += side::SnoopAttack::argmin_candidate(cfg, attack.capture_trace(c)) == c;
    ++total;
  }
  return static_cast<double>(ok) / static_cast<double>(total);
}

double kf2_total(const rnic::DeviceProfile& prof, std::uint64_t seed) {
  revng::FlowSpec w;
  w.opcode = verbs::WrOpcode::kRdmaWrite;
  w.msg_size = 128;
  w.qp_num = 2;
  w.depth_per_qp = 16;
  w.duration = sim::us(400);
  // run_contention_pair takes a model; rebuild inline with the profile.
  auto run_pair = [&](const rnic::DeviceProfile& p) {
    revng::ContentionCell cell;
    {
      revng::Testbed bed(p, seed, 1);
      revng::Flow f(bed, 0, w);
      bed.sched().run_while([&] { return !f.finished(); });
      cell.solo_a_gbps = f.achieved_gbps();
      cell.solo_b_gbps = cell.solo_a_gbps;
    }
    {
      revng::Testbed bed(p, seed + 2, 2);
      revng::Flow fa(bed, 0, w);
      revng::Flow fb(bed, 1, w);
      bed.sched().run_while([&] { return !(fa.finished() && fb.finished()); });
      cell.duo_a_gbps = fa.achieved_gbps();
      cell.duo_b_gbps = fb.achieved_gbps();
    }
    return cell.total_vs_solo();
  };
  return run_pair(prof);
}

struct Kf1aResult {
  double write_keep;
  double med_read_keep;
};

Kf1aResult kf1a(const rnic::DeviceProfile& prof, std::uint64_t seed) {
  revng::FlowSpec w;
  w.opcode = verbs::WrOpcode::kRdmaWrite;
  w.msg_size = 128;
  w.qp_num = 2;
  w.depth_per_qp = 16;
  w.duration = sim::us(400);
  revng::FlowSpec r = w;
  r.opcode = verbs::WrOpcode::kRdmaRead;
  r.msg_size = 1024;

  double solo_w = 0, solo_r = 0, duo_w = 0, duo_r = 0;
  {
    revng::Testbed bed(prof, seed, 1);
    revng::Flow f(bed, 0, w);
    bed.sched().run_while([&] { return !f.finished(); });
    solo_w = f.achieved_gbps();
  }
  {
    revng::Testbed bed(prof, seed + 1, 1);
    revng::Flow f(bed, 0, r);
    bed.sched().run_while([&] { return !f.finished(); });
    solo_r = f.achieved_gbps();
  }
  {
    revng::Testbed bed(prof, seed + 2, 2);
    revng::Flow fw(bed, 0, w);
    revng::Flow fr(bed, 1, r);
    bed.sched().run_while([&] { return !(fw.finished() && fr.finished()); });
    duo_w = fw.achieved_gbps();
    duo_r = fr.achieved_gbps();
  }
  return {duo_w / solo_w, duo_r / solo_r};
}

}  // namespace

RAGNAR_SCENARIO(ablation_model_features, "design",
                "remove one modeled mechanism, watch its paper finding collapse",
                "6 mechanism ablations on CX-4",
                "6 mechanism ablations on CX-4") {
  ctx.header("model-feature ablation",
                "remove one mechanism, watch its finding collapse");
  const auto base = rnic::make_profile(rnic::DeviceModel::kCX4);

  std::printf("\n%-34s %-22s %-12s %-12s\n", "variant", "observable",
              "baseline", "ablated");

  {
    auto p = base;
    p.xl_line_hit_bonus = 0;
    p.xl_line_cache_entries = 1;
    std::printf("%-34s %-22s %-12.0f %-12.0f\n", "no shared line cache",
                "snoop argmin acc (%)", 100 * snoop_argmin_accuracy(base, ctx.seed),
                100 * snoop_argmin_accuracy(p, ctx.seed));
  }
  {
    auto p = base;
    p.xl_mr_switch_penalty = 0;
    std::printf("%-34s %-22s %-12.1f %-12.1f\n", "no MR context register",
                "inter-MR chan err (%)",
                100 * channel_error(base, covert::UliChannelKind::kInterMr,
                                    ctx.seed),
                100 * channel_error(p, covert::UliChannelKind::kInterMr,
                                    ctx.seed));
  }
  {
    // The intra-MR channel rides the whole offset-effect family: word/line
    // alignment, the relative (delta) terms, and the descriptor banking
    // (the receiver's probe shares a bank with one of the two encoded
    // offsets).  Removing Key Finding 4 entirely kills it.
    auto p = base;
    p.xl_sub8_penalty = 0;
    p.xl_line_penalty = 0;
    p.xl_rel_sub8_penalty = 0;
    p.xl_rel_line_penalty = 0;
    p.xl_rel_page_penalty = 0;
    p.xl_bank_gradient = 0;
    p.xl_bank_conflict = 0;
    std::printf("%-34s %-22s %-12.1f %-12.1f\n", "no offset effects (KF4)",
                "intra-MR chan err (%)",
                100 * channel_error(base, covert::UliChannelKind::kIntraMr,
                                    ctx.seed),
                100 * channel_error(p, covert::UliChannelKind::kIntraMr,
                                    ctx.seed));
  }
  {
    auto p = base;
    p.rx_dispatch_lanes = 1;
    std::printf("%-34s %-22s %-12.0f %-12.0f\n", "single dispatch lane",
                "KF2 total/solo (%)", 100 * kf2_total(base, ctx.seed),
                100 * kf2_total(p, ctx.seed));
  }
  {
    auto p = base;
    p.staging_pressure = 0;
    const auto b = kf1a(base, ctx.seed);
    const auto a = kf1a(p, ctx.seed);
    std::printf("%-34s %-22s %-12.0f %-12.0f\n", "no staging-port pressure",
                "KF1a medR keep (%)", 100 * b.med_read_keep,
                100 * a.med_read_keep);
  }
  {
    auto p = base;
    p.tx_over_rx_pressure = 0;
    const auto b = kf1a(base, ctx.seed);
    const auto a = kf1a(p, ctx.seed);
    std::printf("%-34s %-22s %-12.0f %-12.0f\n", "no egress-over-ingress",
                "KF1a write keep (%)", 100 * b.write_keep,
                100 * a.write_keep);
  }

  std::printf("\nreading: baseline column shows the finding present; the "
              "ablated column shows it gone (error -> ~50%% = channel dead; "
              "keep -> ~100%% = contention effect gone; accuracy -> chance "
              "= leak gone).\n");
  return 0;
}
