// Reproduces Table I's stealth/granularity comparison between Pythia and
// Ragnar (and footnote 3): Pythia's persistent page-granular attack is
// mitigated by the widely-deployed huge-page configuration; Ragnar's
// volatile Grain-IV attack resolves 64 B offsets *inside* a page and does
// not care about page size — the paper's setup even runs it on 2 MB huge
// pages (Table IV).
#include <cstdio>

#include "scenario/scenario.hpp"
#include "defense/harmonic.hpp"
#include "side/pythia_snoop.hpp"
#include "side/snoop.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(claim_hugepage_mitigation, "Table I",
                "huge pages kill the Pythia page snoop, not the Ragnar offset snoop",
                "3 victims per attack",
                "3 victims per attack") {
  ctx.header("huge-page mitigation: Pythia vs Ragnar (Table I)",
                "page-granular persistent attack dies, offset-granular "
                "volatile attack does not");

  // Pythia page snoop, 4 KB pages vs 2 MB huge pages.
  for (const bool huge : {false, true}) {
    side::PythiaSnoopConfig cfg;
    cfg.model = rnic::DeviceModel::kCX5;
    cfg.seed = ctx.seed;
    cfg.huge_pages = huge;
    side::PythiaPageSnoop snoop(cfg);
    std::size_t ok = 0, total = 0;
    for (std::size_t victim : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
      ok += snoop.guess(victim) == victim;
      ++total;
    }
    std::printf("Pythia page snoop, %-9s: %zu/%zu victims identified\n",
                huge ? "2MB pages" : "4KB pages", ok, total);
  }

  // Ragnar offset snoop on huge pages (its default configuration).
  {
    side::SnoopConfig cfg;
    cfg.model = rnic::DeviceModel::kCX5;
    cfg.seed = ctx.seed;
    side::SnoopAttack attack(cfg);
    std::size_t ok = 0, total = 0;
    for (std::size_t victim : {std::size_t{2}, std::size_t{7}, std::size_t{12}}) {
      ok += side::SnoopAttack::argmin_candidate(
                cfg, attack.capture_trace(victim)) == victim;
      ++total;
    }
    std::printf("Ragnar offset snoop, 2MB pages: %zu/%zu victims identified "
                "(64 B resolution inside one page)\n",
                ok, total);
  }

  // Stealth: Pythia's eviction sweep walks hundreds of distinct pages per
  // round — a Grain-III resource-footprint spike a HARMONIC-style monitor
  // can see.  Ragnar's probe touches one MR at gently varying offsets.
  {
    side::PythiaSnoopConfig cfg;
    cfg.model = rnic::DeviceModel::kCX5;
    cfg.seed = ctx.seed + 1;
    side::PythiaPageSnoop snoop(cfg);
    (void)snoop.attack_scores(2);
    const auto stats = snoop.server_device().take_src_window_stats();
    std::size_t attacker_tiny = 0;
    for (const auto& [src, s] : stats) {
      attacker_tiny = std::max(attacker_tiny,
                               static_cast<std::size_t>(s.tiny_msgs));
    }
    std::printf("\nPythia eviction footprint: %zu tiny probe reads across "
                "the sweep window (Grain-II/III visible burst)\n",
                attacker_tiny);
  }
  std::printf("\npaper: Pythia is 'mitigated by widely-used huge pages' "
              "(footnote 3); Ragnar is Grain-IV and page-size-independent.\n");
  return 0;
}
