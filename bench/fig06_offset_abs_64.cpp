// Reproduces Fig 6: ULI vs absolute remote-address offset for 64 B RDMA
// READs in one MR on CX-4.  Expected structure (Key Finding 4): latency
// drops at 8 B-aligned offsets, stronger drops at 64 B multiples, and an
// apparent 2048 B periodicity.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "revng/sweeps.hpp"
#include "sim/trace.hpp"

using namespace ragnar;

RAGNAR_SCENARIO(fig06_offset_abs_64, "Fig 6",
                "ULI vs absolute offset, 64 B READs (KF4 periodicity)",
                "offsets 0..2304 step 4, 300 samples",
                "offsets 0..4096 step 1, 600 samples") {
  ctx.header("ULI vs absolute offset, 64 B READs (Fig 6)",
                "CX-4, same MR, single swept target");

  const std::uint64_t max_offset = ctx.full ? 4096 : 2304;
  const std::uint64_t step = ctx.full ? 1 : 4;
  const std::size_t samples = ctx.full ? 600 : 300;

  const auto curve = revng::sweep_abs_offset(rnic::DeviceModel::kCX4,
                                             ctx.seed, 64, max_offset, step,
                                             samples);

  std::vector<double> means;
  for (const auto& p : curve) means.push_back(p.mean);
  std::printf("%s\n",
              sim::ascii_plot(means, 96, 16, "mean ULI (ns) vs offset").c_str());

  // Alignment-class summary = the quantitative form of the periodicity.
  double sum8 = 0, n8 = 0, sum64 = 0, n64 = 0, sum_mis = 0, n_mis = 0;
  for (const auto& p : curve) {
    const auto off = static_cast<std::uint64_t>(p.x);
    if (off % 64 == 0) {
      sum64 += p.mean;
      ++n64;
    } else if (off % 8 == 0) {
      sum8 += p.mean;
      ++n8;
    } else {
      sum_mis += p.mean;
      ++n_mis;
    }
  }
  std::printf("alignment-class mean ULI:  64B-aligned %.1f ns   "
              "8B-aligned %.1f ns   misaligned %.1f ns\n",
              sum64 / n64, sum8 / n8, n_mis ? sum_mis / n_mis : 0.0);
  std::printf("paper shape: drops at 8 B alignment, bigger drops at 64 B "
              "multiples, 2048 B sawtooth period.\n");

  if (!ctx.csv_dir.empty()) {
    std::vector<std::vector<double>> cols(4);
    for (const auto& p : curve) {
      cols[0].push_back(p.x);
      cols[1].push_back(p.mean);
      cols[2].push_back(p.p10);
      cols[3].push_back(p.p90);
    }
    sim::write_csv(ctx.csv_dir + "/fig06.csv", "offset,mean,p10,p90", cols);
  }
  return 0;
}
